"""Backend parity: the packed and object index backends must agree.

The packed backend rewrites every query hot path (merge joins, FindNN
cursors, FindNEN, the dis(v, t) kernel), so this suite pins it to the
object reference implementation: identical witnesses, costs, and search
counters for every method, on several generated graphs, plus structural
parity of the packed inverted index itself.
"""

import random

import pytest

from repro import KOSREngine, make_query
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.labeling.inverted import build_inverted_index
from repro.labeling.packed_inverted import build_packed_inverted_index
from repro.labeling.pll import build_pruned_landmark_labels

#: methods that exercise the NN-oracle stack (GSP/GSP-CH are graph-only)
PAIR_METHODS = ("KPNE", "PK", "SK", "SK-NODOM")

#: the QueryStats counters that must stay bit-identical across paths
COUNTERS = ("examined_routes", "generated_routes", "nn_queries",
            "dominated_routes", "reconsidered_routes", "max_queue_size",
            "results_found", "completed")


def assert_same_outcome(a, b):
    """Results and every search counter identical between two runs."""
    assert a.witnesses == b.witnesses
    assert a.costs == pytest.approx(b.costs)
    for field in COUNTERS:
        assert getattr(a.stats, field) == getattr(b.stats, field), field
    assert a.stats.per_level_examined == b.stats.per_level_examined


def _graph(seed: int, n: int = 40, cats: int = 4, size: int = 7):
    g = random_graph(n, avg_out_degree=2.8, rng=random.Random(seed))
    assign_uniform_categories(g, cats, size, random.Random(seed + 1))
    return g


@pytest.fixture(scope="module",
                params=[(11, "build"), (23, "build"), (57, "build"),
                        (11, "mmap"), (57, "mmap")],
                ids=lambda p: f"seed{p[0]}-{p[1]}")
def engines(request, tmp_path_factory):
    """(graph, packed-family engine, object engine) pairs.

    The ``mmap`` variants run the whole suite against an engine attached
    read-only to a saved index file, so every parity assertion (results
    AND counters, bit-identical) also pins the zero-copy path to the
    object reference.
    """
    seed, mode = request.param
    g = _graph(seed)
    packed = KOSREngine.build(g, backend="packed")
    if mode == "mmap":
        path = tmp_path_factory.mktemp("idx") / f"parity_{seed}.rpli"
        packed.save_index(path)
        packed = KOSREngine.from_index_file(g, path)
    obj = KOSREngine.build(g, backend="object")
    return g, packed, obj


class TestQueryParity:
    @pytest.mark.parametrize("method", PAIR_METHODS)
    def test_witnesses_costs_counters_identical(self, engines, method):
        g, packed, obj = engines
        rng = random.Random(5)
        for _ in range(6):
            s = rng.randrange(g.num_vertices)
            t = rng.randrange(g.num_vertices)
            cats = rng.sample(range(g.num_categories), 2)
            q = make_query(g, s, t, cats, k=4)
            a = packed.run(q, method=method)
            b = obj.run(q, method=method)
            assert a.witnesses == b.witnesses
            assert a.costs == pytest.approx(b.costs)
            assert a.stats.examined_routes == b.stats.examined_routes
            assert a.stats.generated_routes == b.stats.generated_routes
            assert a.stats.nn_queries == b.stats.nn_queries
            assert a.stats.dominated_routes == b.stats.dominated_routes
            assert a.stats.reconsidered_routes == b.stats.reconsidered_routes

    def test_parity_with_profile_enabled(self, engines):
        """Profiling must not change answers on either backend."""
        g, packed, obj = engines
        q = make_query(g, 0, g.num_vertices - 1, [0, 1], k=3)
        base = obj.run(q, method="SK")
        for engine in (packed, obj):
            profiled = engine.run(q, method="SK", profile=True)
            assert profiled.witnesses == base.witnesses
            assert profiled.stats.nn_queries == base.stats.nn_queries

    def test_gsp_unaffected_by_backend(self, engines):
        g, packed, obj = engines
        q = make_query(g, 0, g.num_vertices - 1, [0, 1], k=1)
        assert packed.run(q, method="GSP").costs == pytest.approx(
            obj.run(q, method="GSP").costs
        )

    def test_route_restoration_identical(self, engines):
        g, packed, obj = engines
        q = make_query(g, 0, g.num_vertices - 1, [0, 1], k=2)
        a = packed.run(q, method="SK", restore_routes=True)
        b = obj.run(q, method="SK", restore_routes=True)
        for ra, rb in zip(a.results, b.results):
            assert (ra.route is None) == (rb.route is None)
            if ra.route is not None:
                assert ra.route.vertices == rb.route.vertices
                assert ra.route.cost == pytest.approx(rb.route.cost)

    def test_sk_db_from_packed_engine(self, engines, tmp_path):
        """attach_disk_store must serialise the packed indexes correctly."""
        g, packed, _ = engines
        packed.attach_disk_store(tmp_path)
        q = make_query(g, 0, g.num_vertices - 1, [0, 1, 2], k=3)
        assert packed.run(q, method="SK-DB").costs == pytest.approx(
            packed.run(q, method="SK").costs
        )

    def test_dij_backend_matches_label_on_packed_engine(self, engines):
        g, packed, _ = engines
        q = make_query(g, 0, g.num_vertices - 1, [0, 1], k=3)
        assert packed.run(q, method="PK", nn_backend="dij-restart").costs == \
            pytest.approx(packed.run(q, method="PK").costs)


class TestPackedInvertedParity:
    @pytest.fixture(scope="class")
    def case(self):
        g = _graph(91)
        labels = build_pruned_landmark_labels(g)
        return g, labels

    def test_hub_lists_identical(self, case):
        g, labels = case
        for cid in range(g.num_categories):
            obj = build_inverted_index(g, labels, cid)
            packed = build_packed_inverted_index(g, labels, cid)
            assert set(packed.slices) == set(obj.lists)
            for hub, entries in obj.lists.items():
                assert packed.hub_list(hub) == entries
            assert packed.as_lists() == obj.as_lists()

    def test_statistics_identical(self, case):
        g, labels = case
        for cid in range(g.num_categories):
            obj = build_inverted_index(g, labels, cid)
            packed = build_packed_inverted_index(g, labels, cid)
            assert packed.total_entries == obj.total_entries
            assert packed.num_hubs == obj.num_hubs
            assert packed.average_list_length() == pytest.approx(
                obj.average_list_length()
            )

    def test_runs_sorted_and_consistent(self, case):
        g, labels = case
        packed = build_packed_inverted_index(g, labels, 0)
        for hub, (lo, hi) in packed.slices.items():
            assert 0 <= lo < hi <= len(packed.members)
            run = list(zip(packed.dists[lo:hi], packed.members[lo:hi]))
            assert run == sorted(run)
        # rank-keyed view mirrors the vertex-keyed one
        assert sorted(packed.rank_slices.values()) == sorted(packed.slices.values())

    def test_unknown_hub_is_empty(self, case):
        g, labels = case
        packed = build_packed_inverted_index(g, labels, 0)
        assert packed.hub_slice(10 ** 9) == (0, 0)
        assert packed.hub_list(10 ** 9) == []


class TestServicePathParity:
    """The warm batch/service path answers like fresh single-query engines.

    The session cache shares FindNN streams and ``dis(·, t)`` memos
    across a batch, so these tests are the contract that warm reuse is
    observably transparent: for every method × index backend, results
    *and* every QueryStats counter from ``run_batch`` equal those of a
    cold ``engine.run`` on a freshly built engine (the cold-equivalent
    accounting described in ``repro.service.cache``).
    """

    def _workload(self, g, rng, n_targets=3, per_target=3, k=3):
        queries = []
        for _ in range(n_targets):
            t = rng.randrange(g.num_vertices)
            cats = rng.sample(range(g.num_categories), 2)
            for _ in range(per_target):
                queries.append(
                    make_query(g, rng.randrange(g.num_vertices), t, cats, k=k))
        return queries

    @pytest.mark.parametrize("method", PAIR_METHODS)
    def test_batch_matches_fresh_engines(self, engines, method):
        g, packed, obj = engines
        for engine, backend in ((packed, "packed"), (obj, "object")):
            queries = self._workload(g, random.Random(29))
            batch = engine.service.run_batch(queries, method=method)
            assert len(batch) == len(queries)
            for q, warm in zip(queries, batch):
                cold = KOSREngine.build(g, backend=backend).run(q, method=method)
                assert_same_outcome(warm, cold)

    def test_batch_sk_db_matches_fresh_engines(self, engines, tmp_path):
        g, packed, _ = engines
        packed.attach_disk_store(tmp_path)
        queries = self._workload(g, random.Random(31), n_targets=2)
        batch = packed.service.run_batch(queries, method="SK-DB")
        for q, warm in zip(queries, batch):
            fresh = KOSREngine.build(g)
            fresh._store = packed._store
            assert_same_outcome(warm, fresh.run(q, method="SK-DB"))

    def test_gsp_via_service(self, engines):
        g, packed, _ = engines
        q = make_query(g, 0, g.num_vertices - 1, [0, 1], k=1)
        for method in ("GSP", "GSP-CH"):
            warm = packed.service.run(q, method=method)
            cold = packed.run(q, method=method)
            assert warm.costs == pytest.approx(cold.costs)

    def test_repeated_warm_queries_report_cold_counters(self, engines):
        """The Nth identical warm query books the same counters as the 1st."""
        g, packed, _ = engines
        q = make_query(g, 1, g.num_vertices - 2, [0, 1], k=4)
        cold = packed.run(q, method="SK")
        service = packed.service
        for _ in range(3):
            assert_same_outcome(service.run(q, method="SK"), cold)

    def test_profile_mode_on_the_service_path(self, engines):
        g, packed, _ = engines
        q = make_query(g, 0, g.num_vertices - 1, [0, 1], k=3)
        cold = packed.run(q, method="SK", profile=True)
        warm = packed.service.run(q, method="SK", profile=True)
        assert_same_outcome(warm, cold)

    def test_batch_restores_routes(self, engines):
        g, packed, _ = engines
        queries = [make_query(g, 0, g.num_vertices - 1, [0, 1], k=2)]
        batch = packed.service.run_batch(queries, method="SK",
                                         restore_routes=True)
        cold = packed.run(queries[0], method="SK", restore_routes=True)
        for warm_item, cold_item in zip(batch.results[0].results, cold.results):
            assert (warm_item.route is None) == (cold_item.route is None)
            if warm_item.route is not None:
                assert warm_item.route.vertices == cold_item.route.vertices

    def test_threaded_batch_matches_sequential(self, engines):
        g, packed, _ = engines
        queries = self._workload(g, random.Random(37))
        sequential = packed.service.run_batch(queries, method="SK")
        from repro.service import QueryService

        threaded = QueryService(packed).run_batch(queries, method="SK",
                                                  max_workers=2)
        for a, b in zip(sequential, threaded):
            assert_same_outcome(a, b)
        # threaded cache stats aggregate the per-worker sessions
        assert threaded.cache_stats["finder_misses"] >= 1
        assert threaded.cache_stats["finder_hits"] >= 1

    def test_threaded_batch_with_dirty_overlays(self):
        """Pending overlay deltas are folded before workers spawn.

        Lazy cursor-time patching mutates the shared packed buffers, so
        a threaded batch over a dirty index must pre-patch (and still
        answer exactly like fresh engines).
        """
        from repro.service import QueryService

        g = _graph(41)
        engine = KOSREngine.build(g)
        outsider = next(v for v in range(g.num_vertices)
                        if not g.has_category(v, 0))
        engine.add_vertex_to_category(outsider, 0)
        assert engine.inverted[0].dirty
        rng = random.Random(43)
        queries = [make_query(g, rng.randrange(g.num_vertices), t, [0, 1], k=3)
                   for t in rng.sample(range(g.num_vertices), 4)
                   for _ in range(2)]
        threaded = QueryService(engine).run_batch(queries, method="SK",
                                                  max_workers=3)
        assert not engine.inverted[0].dirty  # folded up front
        for q, warm in zip(queries, threaded):
            assert_same_outcome(warm, KOSREngine.build(g).run(q, method="SK"))

    def test_dij_backends_stay_cold_on_service_path(self, engines):
        """Dijkstra comparators are rebuilt per query even when warm."""
        g, packed, _ = engines
        q = make_query(g, 0, g.num_vertices - 1, [0, 1], k=2)
        cold = packed.run(q, method="PK", nn_backend="dij-restart")
        service = packed.service
        for _ in range(2):
            warm = service.run(q, method="PK", nn_backend="dij-restart")
            assert_same_outcome(warm, cold)


class TestPostUpdateParity:
    """Both backends stay bit-identical *after* dynamic updates.

    The packed engine absorbs category updates through its delta
    overlays; the object engine patches its sorted lists in place.  The
    graph is shared, so the object index is patched through the
    module-level helpers on pre-restored ``F(v)`` state.
    """

    def _twin_engines(self, seed=77):
        g = _graph(seed)
        return g, KOSREngine.build(g), KOSREngine.build(g, backend="object")

    def _assert_parity(self, g, packed, obj, rng, rounds=6):
        for _ in range(rounds):
            s = rng.randrange(g.num_vertices)
            t = rng.randrange(g.num_vertices)
            cats = rng.sample(range(g.num_categories), 2)
            for method in ("SK", "PK"):
                q = make_query(g, s, t, cats, k=3)
                a = packed.run(q, method=method)
                b = obj.run(q, method=method)
                assert a.witnesses == b.witnesses
                assert a.costs == pytest.approx(b.costs)
                assert a.stats.nn_queries == b.stats.nn_queries
                assert a.stats.examined_routes == b.stats.examined_routes

    def test_parity_after_category_insert_and_remove(self):
        from repro.labeling.updates import (
            add_vertex_to_category,
            remove_vertex_from_category,
        )

        g, packed, obj = self._twin_engines()
        outsider = next(v for v in range(g.num_vertices)
                        if not g.has_category(v, 0))
        packed.add_vertex_to_category(outsider, 0)
        assert g.has_category(outsider, 0)
        # graph flag already set; patch the object index directly
        g.unassign_category(outsider, 0)
        add_vertex_to_category(g, obj.labels, obj.inverted, outsider, 0)
        self._assert_parity(g, packed, obj, random.Random(3))

        member = sorted(g.members(1))[0]
        packed.remove_vertex_from_category(member, 1)
        g.assign_category(member, 1)
        remove_vertex_from_category(g, obj.labels, obj.inverted, member, 1)
        self._assert_parity(g, packed, obj, random.Random(4))

        # Table IX statistics stay in lockstep too.
        for cid in range(g.num_categories):
            assert packed.inverted[cid].total_entries == \
                obj.inverted[cid].total_entries
            assert packed.inverted[cid].num_hubs == obj.inverted[cid].num_hubs

    def test_parity_after_edge_update_stays_packed(self):
        from repro.labeling.packed import PackedLabelIndex

        g, packed, _ = self._twin_engines(78)
        packed.update_edge(0, g.num_vertices - 1, 0.75)
        assert isinstance(packed.labels, PackedLabelIndex)
        obj = KOSREngine.build(g, backend="object")
        self._assert_parity(g, packed, obj, random.Random(5))

    def test_compact_preserves_results(self):
        g, packed, obj = self._twin_engines(79)
        outsider = next(v for v in range(g.num_vertices)
                        if not g.has_category(v, 0))
        packed.add_vertex_to_category(outsider, 0)
        q = make_query(g, 0, g.num_vertices - 1, [0, 1], k=3)
        before = packed.run(q, method="SK")
        packed.compact()
        after = packed.run(q, method="SK")
        assert before.witnesses == after.witnesses
        assert before.costs == after.costs
        assert not packed.inverted[0].dirty

    def test_updates_detach_stale_disk_store(self, tmp_path):
        """SK-DB must not silently serve pre-update shards."""
        from repro.exceptions import QueryError

        g, packed, _ = self._twin_engines(83)
        packed.attach_disk_store(tmp_path)
        outsider = next(v for v in range(g.num_vertices)
                        if not g.has_category(v, 0))
        packed.add_vertex_to_category(outsider, 0)
        q = make_query(g, 0, g.num_vertices - 1, [0, 1], k=2)
        with pytest.raises(QueryError, match="attach_disk_store"):
            packed.run(q, method="SK-DB")
        # re-attaching refreshes the shards with the updated indexes
        packed.attach_disk_store(tmp_path)
        assert packed.run(q, method="SK-DB").costs == \
            pytest.approx(packed.run(q, method="SK").costs)

    def test_overlay_ratio_survives_edge_update(self):
        g = _graph(85)
        engine = KOSREngine.build(g, overlay_ratio=0.5)
        assert all(il.overlay_ratio == 0.5 for il in engine.inverted.values())
        engine.update_edge(0, g.num_vertices - 1, 2.0)
        assert all(il.overlay_ratio == 0.5 for il in engine.inverted.values())

    def test_update_guard_validates_every_category(self):
        """The fail-fast guard inspects *all* indexes, not just the first."""
        from repro.exceptions import IndexBuildError
        from repro.labeling.updates import add_vertex_to_category

        g, packed, _ = self._twin_engines(81)
        last_cid = max(packed.inverted)
        packed.inverted[last_cid] = object()  # pollute a *non-first* slot
        victim = next(v for v in range(g.num_vertices)
                      if not g.has_category(v, 0))
        with pytest.raises(IndexBuildError, match="PackedInvertedIndex"):
            add_vertex_to_category(g, packed.labels, packed.inverted, victim, 0)
        # The guard fires before F(v) is touched.
        assert not g.has_category(victim, 0)
