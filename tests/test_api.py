"""The typed request/response API: QueryOptions, QueryRequest, shims.

Pins the PR 4 redesign contracts:

* options are frozen value objects with the defaults defined once;
* every entry point accepts ``options=`` and produces identical results
  to the deprecated keyword style (which must warn, exactly once per
  call site, and reject unknown keywords);
* the historical ``engine.query`` drift — ``strict_budget`` silently
  dropped on the way to ``run`` — is fixed and structurally impossible
  (both paths build the same ``QueryOptions``);
* ``QueryRequest.key`` is the coalescing identity (options included)
  and ``group_key`` matches the batch executor's grouping.
"""

import random
import warnings

import pytest

from repro import (
    BudgetExceededError,
    KOSREngine,
    QueryOptions,
    QueryRequest,
    QueryService,
    make_query,
)
from repro.api import DEFAULT_OPTIONS, merge_query_kwargs
from repro.exceptions import QueryError
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories

from test_backend_parity import assert_same_outcome


@pytest.fixture(scope="module")
def engine():
    g = random_graph(40, avg_out_degree=2.8, rng=random.Random(41))
    assign_uniform_categories(g, 4, 7, random.Random(42))
    return KOSREngine.build(g)


class TestQueryOptions:
    def test_defaults_defined_once(self):
        assert QueryOptions() == DEFAULT_OPTIONS
        assert DEFAULT_OPTIONS.method == "SK"
        assert DEFAULT_OPTIONS.nn_backend == "label"
        assert DEFAULT_OPTIONS.budget is None
        assert not DEFAULT_OPTIONS.strict_budget

    def test_frozen_and_hashable(self):
        opts = QueryOptions(method="PK", budget=10)
        with pytest.raises(AttributeError):
            opts.method = "SK"
        assert opts == QueryOptions(method="PK", budget=10)
        assert len({opts, QueryOptions(method="PK", budget=10)}) == 1

    def test_replace_returns_new(self):
        opts = QueryOptions()
        strict = opts.replace(strict_budget=True)
        assert strict.strict_budget and not opts.strict_budget
        assert strict.method == opts.method

    def test_rejects_negative_budgets(self):
        with pytest.raises(QueryError, match="budget"):
            QueryOptions(budget=-1)
        with pytest.raises(QueryError, match="time_budget_s"):
            QueryOptions(time_budget_s=-0.5)

    def test_plan_for_validates_vocabulary(self):
        with pytest.raises(QueryError, match="unknown method"):
            QueryOptions(method="NOPE").plan_for("packed")
        plan = QueryOptions(method="PK").plan_for("packed")
        assert plan.method == "PK" and plan.backend == "packed"


class TestQueryRequest:
    def test_key_includes_options(self, engine):
        q = make_query(engine.graph, 0, 30, [0, 1], k=2)
        a = QueryRequest(q, QueryOptions())
        b = QueryRequest(q, QueryOptions(budget=5))
        assert a.key != b.key
        assert a.key == QueryRequest(q).key  # defaults are canonical

    def test_key_is_s_t_c_k_identity(self, engine):
        g = engine.graph
        a = QueryRequest(make_query(g, 0, 30, [0, 1], k=2))
        b = QueryRequest(make_query(g, 0, 30, [0, 1], k=2))
        c = QueryRequest(make_query(g, 1, 30, [0, 1], k=2))
        assert a.key == b.key and hash(a) == hash(b)
        assert a.key != c.key

    def test_group_key_matches_batch_grouping(self, engine):
        g = engine.graph
        q = make_query(g, 3, 30, [1, 0], k=2)
        assert QueryRequest(q).group_key == (30, (1, 0))
        groups = QueryService.group_queries([q])
        assert QueryRequest(q).group_key in groups


class TestKwargsShim:
    def test_run_kwargs_warn_and_match_options_path(self, engine):
        q = make_query(engine.graph, 0, 30, [0, 1], k=2)
        with pytest.warns(DeprecationWarning, match="KOSREngine.run"):
            legacy = engine.run(q, method="PK", budget=1000)
        typed = engine.run(q, QueryOptions(method="PK", budget=1000))
        assert_same_outcome(legacy, typed)

    def test_options_path_does_not_warn(self, engine):
        q = make_query(engine.graph, 0, 30, [0], k=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine.run(q, QueryOptions())
            engine.query(0, 30, [0], k=1, method="PK")  # sugar, not a shim
            engine.service.run(q, QueryOptions())

    def test_unknown_keyword_rejected(self, engine):
        q = make_query(engine.graph, 0, 30, [0], k=1)
        with pytest.raises(TypeError, match="bogus"):
            engine.run(q, bogus=1)

    def test_old_positional_method_gets_a_clear_error(self, engine):
        """Pre-PR-4 `run(q, "PK")` must fail loudly, not deep inside."""
        q = make_query(engine.graph, 0, 30, [0], k=1)
        with pytest.raises(TypeError, match="QueryOptions"):
            engine.run(q, "PK")
        with pytest.raises(TypeError, match="QueryOptions"):
            engine.service.run(q, "PK")

    def test_service_shims(self, engine):
        q = make_query(engine.graph, 0, 30, [0, 1], k=2)
        service = QueryService(engine)
        with pytest.warns(DeprecationWarning, match="QueryService.run"):
            legacy = service.run(q, method="SK")
        typed = service.run(q, QueryOptions())
        assert_same_outcome(legacy, typed)
        with pytest.warns(DeprecationWarning, match="run_batch"):
            batch = service.run_batch([q], method="SK")
        assert_same_outcome(batch.results[0],
                            service.run_batch([q], QueryOptions()).results[0])

    def test_kwargs_layer_over_explicit_options(self, engine):
        q = make_query(engine.graph, 0, 30, [0], k=1)
        with pytest.warns(DeprecationWarning):
            result = engine.run(q, QueryOptions(method="PK"), budget=500)
        assert result.stats.method == "PK"  # base option survives the merge

    def test_query_keywords_layer_over_options_too(self, engine):
        """query(..., options=..., budget=1) must not drop the keyword."""
        with pytest.raises(BudgetExceededError):
            engine.query(0, engine.graph.num_vertices - 1, [0, 1, 2], k=3,
                         budget=1, strict_budget=True,
                         options=QueryOptions(method="KPNE"))

    def test_merge_helper_returns_defaults(self):
        assert merge_query_kwargs(None, {}, "x") is DEFAULT_OPTIONS
        opts = QueryOptions(method="PK")
        assert merge_query_kwargs(opts, {}, "x") is opts


class TestStrictBudgetDriftFix:
    """``engine.query`` used to silently drop ``strict_budget``."""

    def test_query_forwards_strict_budget(self, engine):
        with pytest.raises(BudgetExceededError):
            engine.query(0, engine.graph.num_vertices - 1, [0, 1, 2], k=3,
                         method="KPNE", budget=1, strict_budget=True)

    def test_query_and_run_agree_on_every_option(self, engine):
        opts = QueryOptions(method="PK", budget=10_000, restore_routes=True,
                            profile=True)
        q = make_query(engine.graph, 0, 30, [0, 1], k=2)
        via_query = engine.query(0, 30, [0, 1], k=2, options=opts)
        via_run = engine.run(q, opts)
        assert_same_outcome(via_query, via_run)
        assert via_query.results[0].route is not None  # restore_routes took

    def test_batch_accepts_strict_budget(self, engine):
        """run_batch historically had no strict_budget at all."""
        q = make_query(engine.graph, 0, engine.graph.num_vertices - 1,
                       [0, 1, 2], k=3)
        with pytest.raises(BudgetExceededError):
            QueryService(engine).run_batch(
                [q], QueryOptions(method="KPNE", budget=1, strict_budget=True))
