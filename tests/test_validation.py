"""Tests for graph diagnostics (connectivity, coverage, metric checks)."""

import random

import pytest

from repro.graph import Graph, from_edge_list, grid_graph, random_graph
from repro.graph.generators import fla
from repro.graph.validation import (
    GraphReport,
    is_metric,
    is_strongly_connected,
    triangle_violations,
    validate_graph,
)


class TestConnectivity:
    def test_strongly_connected_cycle(self):
        g = from_edge_list(3, [(0, 1, 1), (1, 2, 1), (2, 0, 1)])
        assert is_strongly_connected(g)

    def test_one_way_chain_not_strongly_connected(self):
        g = from_edge_list(3, [(0, 1, 1), (1, 2, 1)])
        assert not is_strongly_connected(g)

    def test_trivial_graphs(self):
        assert is_strongly_connected(Graph(0))
        assert is_strongly_connected(Graph(1))

    def test_random_connected_builder_is_connected(self):
        g = random_graph(40, 2.0, rng=random.Random(1), ensure_connected=True)
        assert is_strongly_connected(g)


class TestReport:
    def test_counts(self):
        g = from_edge_list(4, [(0, 1, 2.0), (1, 0, 5.0)])
        cid = g.add_category("A")
        g.assign_category(0, cid)
        g.add_category("empty")
        report = validate_graph(g)
        assert report.num_vertices == 4
        assert report.num_edges == 2
        assert report.num_isolated == 2
        assert report.min_weight == 2.0 and report.max_weight == 5.0
        assert report.category_sizes == {"A": 1, "empty": 0}
        assert report.uncategorized_vertices == 3

    def test_issues_listed(self):
        g = from_edge_list(3, [(0, 1, 1)])
        g.add_category("empty")
        issues = validate_graph(g).issues
        assert any("isolated" in i for i in issues)
        assert any("strongly connected" in i for i in issues)
        assert any("empty categories" in i for i in issues)

    def test_clean_graph_has_no_issues(self):
        g = grid_graph(4, 4, rng=random.Random(2))
        cid = g.add_category("A")
        g.assign_category(0, cid)
        assert validate_graph(g).issues == []


class TestTriangleInequality:
    def test_violation_detected(self):
        # direct 0->2 costs 10, detour via 1 costs 2.
        g = from_edge_list(3, [(0, 2, 10.0), (0, 1, 1.0), (1, 2, 1.0)])
        violations = triangle_violations(g)
        assert violations and violations[0][:3] == (0, 1, 2)
        assert violations[0][3] == pytest.approx(8.0)
        assert not is_metric(g)

    def test_metric_graph_clean(self):
        g = from_edge_list(3, [(0, 2, 1.5), (0, 1, 1.0), (1, 2, 1.0)])
        assert is_metric(g)

    def test_travel_time_analogue_is_general(self):
        """The FLA analogue must be a *general* graph (Sec. I setting)."""
        g = fla(scale=0.15)
        assert not is_metric(g), (
            "travel-time road analogues should violate the triangle "
            "inequality somewhere — that is the paper's premise"
        )

    def test_sampling_caps_work(self):
        g = from_edge_list(3, [(0, 2, 10.0), (0, 1, 1.0), (1, 2, 1.0)])
        assert triangle_violations(g, sample_vertices=0) == []
