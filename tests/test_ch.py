"""Tests for the contraction-hierarchies substrate."""

import random

import pytest

from repro.ch import build_ch, ch_distance, ch_path
from repro.graph import from_edge_list, grid_graph, random_graph
from repro.paths.dijkstra import dijkstra_distance
from repro.types import INFINITY


@pytest.fixture(scope="module")
def road():
    return grid_graph(7, 7, rng=random.Random(3))


@pytest.fixture(scope="module")
def road_ch(road):
    return build_ch(road)


class TestConstruction:
    def test_ranks_are_permutation(self, road, road_ch):
        assert sorted(road_ch.rank) == list(range(road.num_vertices))

    def test_upward_edges_point_up(self, road_ch):
        for v, targets in enumerate(road_ch.up_out):
            for u in targets:
                assert road_ch.rank[u] > road_ch.rank[v]
        for v, sources in enumerate(road_ch.up_in):
            for u in sources:
                assert road_ch.rank[u] > road_ch.rank[v]

    def test_shortcut_count_recorded(self, road_ch):
        assert road_ch.num_shortcuts >= 0
        assert len(road_ch.middle) <= road_ch.num_shortcuts


class TestQueries:
    def test_distances_match_dijkstra_grid(self, road, road_ch):
        rng = random.Random(17)
        for _ in range(30):
            s = rng.randrange(road.num_vertices)
            t = rng.randrange(road.num_vertices)
            assert ch_distance(road_ch, s, t) == pytest.approx(
                dijkstra_distance(road, s, t)
            )

    def test_distances_match_dijkstra_random_digraphs(self):
        for seed in range(4):
            g = random_graph(35, 2.5, rng=random.Random(seed))
            ch = build_ch(g)
            rng = random.Random(seed + 99)
            for _ in range(15):
                s, t = rng.randrange(35), rng.randrange(35)
                assert ch_distance(ch, s, t) == pytest.approx(
                    dijkstra_distance(g, s, t)
                )

    def test_unreachable(self):
        g = from_edge_list(3, [(0, 1, 1.0)])
        ch = build_ch(g)
        assert ch_distance(ch, 1, 0) == INFINITY
        assert ch_distance(ch, 0, 2) == INFINITY

    def test_same_vertex(self, road_ch):
        assert ch_distance(road_ch, 5, 5) == 0.0

    def test_path_unpacking_valid(self, road, road_ch):
        rng = random.Random(23)
        for _ in range(20):
            s = rng.randrange(road.num_vertices)
            t = rng.randrange(road.num_vertices)
            cost, path = ch_path(road_ch, s, t)
            ref = dijkstra_distance(road, s, t)
            assert cost == pytest.approx(ref)
            if path:
                assert path[0] == s and path[-1] == t
                total = sum(
                    road.edge_weight(a, b) for a, b in zip(path, path[1:])
                )
                assert total == pytest.approx(cost)

    def test_path_unreachable(self):
        g = from_edge_list(2, [(0, 1, 2.0)])
        ch = build_ch(g)
        assert ch_path(ch, 1, 0) == (INFINITY, [])

    def test_path_direct_edge(self):
        g = from_edge_list(2, [(0, 1, 2.0)])
        ch = build_ch(g)
        assert ch_path(ch, 0, 1) == (2.0, [0, 1])

    def test_with_self_loops(self):
        g = from_edge_list(3, [(0, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0)])
        ch = build_ch(g)
        assert ch_distance(ch, 0, 2) == pytest.approx(2.0)
