"""The query service layer: planner registry, session cache, batches.

Covers the contracts the engine facade now rests on:

* the planner resolves every method to a registered executor with
  declared needs and rejects unknown names;
* the epoch-versioned session cache reuses finders / dest kernels within
  an epoch and drops everything when updates or compaction move it;
* SK-DB error paths (no attached store, missing shard on disk) surface
  the right exceptions on both the cold and warm paths;
* ``strict_budget`` interacts correctly with both guard kinds, including
  ``time_budget_s`` deadlines;
* an interleaved update/batch fuzz pins warm execution to fresh
  single-query engines — bit-identical results and counters — right
  through ``update_edge`` and ``compact``.
"""

import json
import random

import pytest

from repro import BudgetExceededError, KOSREngine, QueryService, make_query
from repro.exceptions import IndexStorageError, QueryError
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.service import executor_specs, resolve_plan
from repro.service.cache import SessionCache

from test_backend_parity import assert_same_outcome


def _graph(seed: int, n: int = 40, cats: int = 4, size: int = 7):
    g = random_graph(n, avg_out_degree=2.8, rng=random.Random(seed))
    assign_uniform_categories(g, cats, size, random.Random(seed + 1))
    return g


@pytest.fixture(scope="module")
def engine():
    return KOSREngine.build(_graph(13))


class TestPlanner:
    def test_every_method_has_an_executor(self):
        from repro.core.engine import METHODS

        specs = executor_specs()
        assert set(specs) == set(METHODS)

    def test_declared_needs(self):
        specs = executor_specs()
        assert specs["SK"].needs_finder and not specs["SK"].needs_disk
        assert specs["SK-DB"].needs_disk and not specs["SK-DB"].needs_finder
        assert specs["GSP-CH"].needs_ch
        assert not specs["GSP"].needs_finder

    def test_unknown_method_rejected(self):
        with pytest.raises(QueryError, match="unknown method"):
            resolve_plan("NOPE")

    def test_unknown_backend_rejected(self):
        with pytest.raises(QueryError, match="unknown index backend"):
            resolve_plan("SK", backend="columnar")

    def test_unknown_nn_backend_rejected_only_for_finder_methods(self):
        with pytest.raises(QueryError, match="unknown NN backend"):
            resolve_plan("SK", nn_backend="psychic")
        # GSP ignores the oracle axis (historical engine behaviour)
        assert resolve_plan("GSP", nn_backend="psychic").method == "GSP"

    def test_plans_are_value_objects(self):
        assert resolve_plan("SK") == resolve_plan("SK")
        assert resolve_plan("SK") != resolve_plan("PK")

    def test_engine_run_rejects_unknown_method(self, engine):
        q = make_query(engine.graph, 0, 1, [0], k=1)
        with pytest.raises(QueryError, match="unknown method"):
            engine.run(q, method="NOPE")


class TestSessionCache:
    def test_finder_and_dest_kernel_reused_within_epoch(self, engine):
        service = QueryService(engine)
        q = make_query(engine.graph, 0, 30, [0, 1], k=2)
        service.run(q, method="SK")
        service.run(q, method="SK")
        stats = service.session.stats
        assert stats.finder_misses == 1
        assert stats.finder_hits >= 1
        assert stats.dest_kernel_misses == 1
        assert stats.dest_kernel_hits >= 1

    def test_epoch_moves_on_every_update_kind(self):
        engine = KOSREngine.build(_graph(17))
        seen = {engine.index_epoch}

        outsider = next(v for v in range(engine.graph.num_vertices)
                        if not engine.graph.has_category(v, 0))
        engine.add_vertex_to_category(outsider, 0)
        assert engine.index_epoch not in seen
        seen.add(engine.index_epoch)

        engine.remove_vertex_from_category(outsider, 0)
        assert engine.index_epoch not in seen
        seen.add(engine.index_epoch)

        engine.compact()
        assert engine.index_epoch not in seen
        seen.add(engine.index_epoch)

        engine.update_edge(0, engine.graph.num_vertices - 1, 1.5)
        assert engine.index_epoch not in seen

    def test_epoch_sees_updates_behind_the_engines_back(self):
        """Direct labeling-layer mutations still move the epoch."""
        from repro.labeling.updates import add_vertex_to_category

        engine = KOSREngine.build(_graph(19))
        before = engine.index_epoch
        outsider = next(v for v in range(engine.graph.num_vertices)
                        if not engine.graph.has_category(v, 0))
        add_vertex_to_category(engine.graph, engine.labels, engine.inverted,
                               outsider, 0)
        assert engine.index_epoch > before

    def test_category_update_invalidates_only_that_category(self):
        """A membership update drops the touched category's cursors only:
        the shared finder object (and other categories' streams) survive."""
        engine = KOSREngine.build(_graph(23))
        session = SessionCache(engine)
        view = session.finder_view()
        assert session.finder_view()._shared is view._shared  # warm reuse
        outsider = next(v for v in range(engine.graph.num_vertices)
                        if not engine.graph.has_category(v, 0))
        engine.add_vertex_to_category(outsider, 0)
        assert session.validate() is True  # something dropped
        assert session.finder_view()._shared is view._shared  # finder kept
        assert session.stats.invalidations == 0
        assert session.stats.partial_invalidations == 1
        assert session.validate() is False  # stable again

    def test_edge_update_still_drops_everything(self):
        """A structure update moves epoch_base: wholesale invalidation."""
        engine = KOSREngine.build(_graph(23))
        session = SessionCache(engine)
        view = session.finder_view()
        u, v, w = next(iter(engine.graph.edges()))
        engine.update_edge(u, v, w * 2)
        assert session.validate() is True
        assert session.finder_view()._shared is not view._shared  # dropped
        assert session.stats.invalidations == 1
        assert session.validate() is False

    def test_lazy_query_time_patch_does_not_move_epoch(self):
        """Folding overlay deltas into buffers mid-query is physical only."""
        engine = KOSREngine.build(_graph(27))
        outsider = next(v for v in range(engine.graph.num_vertices)
                        if not engine.graph.has_category(v, 0))
        engine.add_vertex_to_category(outsider, 0)
        epoch = engine.index_epoch
        q = make_query(engine.graph, 0, engine.graph.num_vertices - 1,
                       [0, 1], k=3)
        engine.service.run(q, method="SK")  # cursors patch dirty runs
        assert engine.index_epoch == epoch

    def test_batch_result_shape(self, engine):
        g = engine.graph
        queries = [make_query(g, s, 30, [0, 1], k=2) for s in (0, 1, 2)]
        queries.append(make_query(g, 0, 31, [1, 2], k=2))
        batch = engine.service.run_batch(queries, method="SK")
        assert len(batch) == 4
        assert batch.num_groups == 2
        assert batch.unfinished == 0
        assert [r.query for r in batch] == queries  # input order kept
        assert batch.queries_per_second > 0


class TestCacheRetention:
    """Per-category invalidation: untouched categories stay warm.

    The satellite contract: after updating category A, category B's warm
    entries survive (asserted through ``SessionCache.hit_rates()`` /
    stats counters) and A's cursors are the only ones dropped — while
    answers and ``QueryStats`` on both categories stay bit-identical to
    fresh engines.
    """

    def _warm_two_categories(self):
        g = _graph(31)
        engine = KOSREngine.build(g)
        service = engine.service
        qa = make_query(g, 0, g.num_vertices - 1, [0], k=2)
        qb = make_query(g, 1, g.num_vertices - 1, [1], k=2)
        service.run(qa, method="SK")
        service.run(qb, method="SK")
        return engine, service, qa, qb

    def test_update_a_keeps_b_warm(self):
        engine, service, qa, qb = self._warm_two_categories()
        session = service.session
        cursors = session._label_finder._cursors
        assert (0, 0) in cursors and (1, 1) in cursors
        outsider = next(v for v in range(engine.graph.num_vertices)
                        if not engine.graph.has_category(v, 0))
        engine.add_vertex_to_category(outsider, 0)
        assert session.validate() is True
        # A's cursor is the only thing dropped; B's stream survives.
        assert (0, 0) not in cursors
        assert (1, 1) in cursors
        assert session.stats.cursors_invalidated == 1
        assert session.stats.partial_invalidations == 1
        assert session.stats.invalidations == 0

    def test_b_hits_warm_after_a_update_with_cold_parity(self):
        engine, service, qa, qb = self._warm_two_categories()
        outsider = next(v for v in range(engine.graph.num_vertices)
                        if not engine.graph.has_category(v, 0))
        engine.add_vertex_to_category(outsider, 0)
        before = service.session.stats.as_dict()
        warm_b = service.run(qb, method="SK")
        after = service.session.stats.as_dict()
        # The finder lookup was a hit: B was served from retained state.
        assert after["finder_hits"] == before["finder_hits"] + 1
        assert after["finder_misses"] == before["finder_misses"]
        assert service.session.hit_rates()["finder"] > 0.0
        # ... and both categories still answer exactly like fresh engines.
        fresh = KOSREngine.build(engine.graph.copy(), backend="object")
        assert_same_outcome(warm_b, fresh.run(qb, method="SK"))
        assert_same_outcome(service.run(qa, method="SK"),
                            fresh.run(qa, method="SK"))

    def test_dest_kernels_and_ch_survive_category_updates(self):
        engine, service, qa, qb = self._warm_two_categories()
        session = service.session
        kernels_before = dict(session._dest_kernels)
        service.run(make_query(engine.graph, 0, engine.graph.num_vertices - 1,
                               [0], k=1), method="GSP-CH")
        ch_before = session._ch
        assert kernels_before and ch_before is not None
        outsider = next(v for v in range(engine.graph.num_vertices)
                        if not engine.graph.has_category(v, 1))
        engine.add_vertex_to_category(outsider, 1)
        session.validate()
        # Labels and topology are untouched by membership changes.
        assert dict(session._dest_kernels) == kernels_before
        assert session._ch is ch_before


class TestCachePolicy:
    """LRU eviction caps on dest kernels and warm finder cursors.

    Eviction is a memory policy only: capped sessions must keep
    returning bit-identical results and counters to cold engines (the
    regenerated kernels/cursors are deterministic), while the new
    ``*_evictions`` counters surface the churn.
    """

    def _shared_target_workload(self, g, rng, targets=5, per_target=2):
        queries = []
        for _ in range(targets):
            t = rng.randrange(g.num_vertices)
            cats = rng.sample(range(g.num_categories), 2)
            for _ in range(per_target):
                queries.append(
                    make_query(g, rng.randrange(g.num_vertices), t, cats, k=2))
        return queries

    def test_dest_kernels_capped_with_lru_eviction(self):
        engine = KOSREngine.build(_graph(71))
        service = QueryService(engine, max_dest_kernels=2)
        rng = random.Random(5)
        queries = self._shared_target_workload(engine.graph, rng, targets=5)
        service.run_batch(queries, method="SK")
        session = service.session
        assert len(session._dest_kernels) <= 2
        assert session.stats.dest_kernel_evictions >= 3

    def test_lru_keeps_recently_used_kernel(self):
        engine = KOSREngine.build(_graph(73))
        session = SessionCache(engine, max_dest_kernels=2)
        session.dest_kernel(10)
        session.dest_kernel(11)
        session.dest_kernel(10)          # refresh 10's recency
        session.dest_kernel(12)          # evicts 11, not 10
        assert 10 in session._dest_kernels and 12 in session._dest_kernels
        assert 11 not in session._dest_kernels
        assert session.stats.dest_kernel_evictions == 1

    def test_finder_cursors_capped(self):
        engine = KOSREngine.build(_graph(77))
        service = QueryService(engine, max_finders=3)
        rng = random.Random(7)
        queries = self._shared_target_workload(engine.graph, rng, targets=6)
        service.run_batch(queries, method="SK")
        session = service.session
        # Cursors are trimmed at the *next* query's view creation (never
        # mid-enumeration), so the cap holds at every query boundary.
        session._trim_cursors()
        assert len(session._label_finder._cursors) <= 3
        assert session.stats.cursor_evictions > 0

    @pytest.mark.parametrize("caps", [dict(max_dest_kernels=1),
                                      dict(max_finders=2),
                                      dict(max_dest_kernels=1, max_finders=1)])
    def test_capped_sessions_stay_cold_equivalent(self, caps):
        """Eviction must never change results or counters."""
        g = _graph(79)
        engine = KOSREngine.build(g)
        service = QueryService(engine, **caps)
        rng = random.Random(11)
        queries = self._shared_target_workload(g, rng, targets=4,
                                               per_target=3)
        for method in ("SK", "PK"):
            batch = service.run_batch(queries, method=method)
            for q, warm in zip(queries, batch):
                assert_same_outcome(warm, KOSREngine.build(g).run(q, method=method))

    def test_invalid_caps_rejected(self):
        engine = KOSREngine.build(_graph(83))
        with pytest.raises(ValueError):
            SessionCache(engine, max_dest_kernels=0)
        with pytest.raises(ValueError):
            SessionCache(engine, max_finders=0)

    def test_hit_rates_helper(self):
        engine = KOSREngine.build(_graph(87))
        service = QueryService(engine)
        q = make_query(engine.graph, 0, 30, [0, 1], k=2)
        service.run(q, method="SK")
        service.run(q, method="SK")
        rates = service.session.stats.hit_rates()
        assert rates["finder"] == 0.5
        assert rates["dest_kernel"] == 0.5
        assert rates["disk_view"] == 0.0


class TestSkDbErrorPaths:
    def test_query_before_attach_disk_store(self, engine):
        q = make_query(engine.graph, 0, 10, [0], k=1)
        with pytest.raises(QueryError, match="attach_disk_store"):
            engine.run(q, method="SK-DB")
        with pytest.raises(QueryError, match="attach_disk_store"):
            QueryService(engine).run(q, method="SK-DB")

    def test_missing_category_shard(self, tmp_path):
        engine = KOSREngine.build(_graph(33))
        engine.attach_disk_store(tmp_path)
        (tmp_path / "category_1.pkl").unlink()
        q = make_query(engine.graph, 0, 10, [1], k=1)
        with pytest.raises(IndexStorageError, match="missing category shard"):
            engine.run(q, method="SK-DB")
        with pytest.raises(IndexStorageError, match="missing category shard"):
            QueryService(engine).run(q, method="SK-DB")

    def test_missing_vertex_label_file(self, tmp_path):
        engine = KOSREngine.build(_graph(35))
        engine.attach_disk_store(tmp_path)
        (tmp_path / "vertices.pkl").unlink()
        q = make_query(engine.graph, 0, 10, [0], k=1)
        with pytest.raises(IndexStorageError, match="missing vertex label"):
            QueryService(engine).run(q, method="SK-DB")

    def test_reattach_resets_warm_disk_state(self, tmp_path):
        engine = KOSREngine.build(_graph(37))
        engine.attach_disk_store(tmp_path / "a")
        service = QueryService(engine)
        q = make_query(engine.graph, 0, 10, [0, 1], k=2)
        first = service.run(q, method="SK-DB")
        engine.attach_disk_store(tmp_path / "b")  # new store object
        second = service.run(q, method="SK-DB")
        assert_same_outcome(first, second)
        assert service.session.stats.disk_view_misses == 2


class TestStrictBudget:
    """``strict_budget`` escalates *either* guard into an exception."""

    def test_examined_route_budget(self, engine):
        q = make_query(engine.graph, 0, engine.graph.num_vertices - 1,
                       [0, 1, 2], k=3)
        with pytest.raises(BudgetExceededError):
            engine.run(q, method="KPNE", budget=1, strict_budget=True)

    def test_time_budget_deadline(self, engine):
        """An already-expired deadline trips strict mode (satellite case)."""
        q = make_query(engine.graph, 0, engine.graph.num_vertices - 1,
                       [0, 1, 2], k=3)
        with pytest.raises(BudgetExceededError):
            engine.run(q, method="SK", time_budget_s=0.0, strict_budget=True)

    def test_deadline_without_strict_reports_inf(self, engine):
        q = make_query(engine.graph, 0, engine.graph.num_vertices - 1,
                       [0, 1, 2], k=3)
        result = engine.run(q, method="SK", time_budget_s=0.0)
        assert not result.stats.completed

    def test_generous_guards_complete(self, engine):
        q = make_query(engine.graph, 0, engine.graph.num_vertices - 1,
                       [0, 1], k=2)
        result = engine.run(q, method="SK", budget=10_000, time_budget_s=30.0,
                            strict_budget=True)
        assert result.stats.completed

    def test_strict_budget_on_service_path(self, engine):
        q = make_query(engine.graph, 0, engine.graph.num_vertices - 1,
                       [0, 1, 2], k=3)
        with pytest.raises(BudgetExceededError):
            QueryService(engine).run(q, method="KPNE", budget=1,
                                     strict_budget=True)


class TestInterleavedUpdateFuzz:
    """run_batch interleaved with updates == fresh single-query engines.

    A randomized schedule of batches, category inserts/removals, edge
    updates, and compactions; after every batch each result is replayed
    on a cold engine built from the current graph.  Bit-identical
    witnesses, costs, and counters prove the epoch invalidation never
    serves stale warm state (and never over-serves: counters would drift
    if NL hits leaked across an epoch).
    """

    METHODS = ("SK", "PK")

    def _random_batch(self, g, rng, size=6):
        queries = []
        t = rng.randrange(g.num_vertices)
        cats = rng.sample(range(g.num_categories), 2)
        for _ in range(size):
            # half the batch shares (target, cats); the rest is scattered
            if rng.random() < 0.5:
                queries.append(
                    make_query(g, rng.randrange(g.num_vertices), t, cats, k=3))
            else:
                queries.append(make_query(
                    g, rng.randrange(g.num_vertices),
                    rng.randrange(g.num_vertices),
                    rng.sample(range(g.num_categories), 2), k=3))
        return queries

    @pytest.mark.parametrize("seed", [101, 202])
    def test_fuzz(self, seed):
        rng = random.Random(seed)
        g = _graph(seed, n=36, cats=4, size=6)
        engine = KOSREngine.build(g)
        service = engine.service
        method_cycle = 0
        for step in range(10):
            op = rng.random()
            if op < 0.30:
                v = rng.randrange(g.num_vertices)
                cid = rng.randrange(g.num_categories)
                if g.has_category(v, cid) and g.category_size(cid) > 2:
                    engine.remove_vertex_from_category(v, cid)
                else:
                    engine.add_vertex_to_category(v, cid)
            elif op < 0.40:
                u, v = rng.randrange(g.num_vertices), rng.randrange(g.num_vertices)
                if u != v:
                    engine.update_edge(u, v, rng.uniform(0.5, 3.0))
            elif op < 0.50:
                engine.compact()
            method = self.METHODS[method_cycle % len(self.METHODS)]
            method_cycle += 1
            queries = self._random_batch(g, rng)
            batch = service.run_batch(queries, method=method)
            for q, warm in zip(queries, batch):
                cold = KOSREngine.build(g).run(q, method=method)
                assert_same_outcome(warm, cold)


class TestCliBatchHelpers:
    def test_workload_parsing_accepts_list_and_wrapper(self, tmp_path):
        from repro.cli import _load_workload_records

        records = [{"source": 0, "target": 1, "categories": [0]}]
        p = tmp_path / "wl.json"
        p.write_text(json.dumps(records))
        assert _load_workload_records(str(p)) == records
        p.write_text(json.dumps({"queries": records}))
        assert _load_workload_records(str(p)) == records

    def test_workload_parsing_rejects_garbage(self, tmp_path):
        from repro.cli import _load_workload_records

        p = tmp_path / "wl.json"
        p.write_text("not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            _load_workload_records(str(p))
        p.write_text(json.dumps([{"source": 0}]))
        with pytest.raises(SystemExit, match="source/target/categories"):
            _load_workload_records(str(p))
        p.write_text(json.dumps([]))
        with pytest.raises(SystemExit, match="non-empty"):
            _load_workload_records(str(p))
