"""Property tests for the packed backend's delta-overlay invariants.

Hypothesis drives random sequences of category inserts/removals and
explicit compactions against one fixed graph (labels are topology-only,
so they are built once and shared; each example gets a fresh graph copy
and fresh packed inverted indexes).  Invariants under test:

* a tombstoned (removed) entry never surfaces from a FindNN cursor;
* every effective hub run — base buffers with the overlay folded in —
  stays sorted by ``(dist, vertex)`` and the slice maps stay consistent;
* ``compact()`` changes the physical layout only, never query results.
"""

import random

from hypothesis import given, settings, strategies as st

from repro import KOSREngine, make_query
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.labeling.packed import PackedLabelIndex
from repro.labeling.pll import build_pruned_landmark_labels
from repro.nn.label_nn import PackedLabelNNFinder
from repro.types import INFINITY

N_VERTICES = 18
N_CATEGORIES = 3

_BASE_GRAPH = random_graph(N_VERTICES, avg_out_degree=2.5,
                           rng=random.Random(71))
assign_uniform_categories(_BASE_GRAPH, N_CATEGORIES, 5, random.Random(72))
_LABELS = PackedLabelIndex.from_index(
    build_pruned_landmark_labels(_BASE_GRAPH))

#: one op = (kind, vertex, category); "compact" ignores vertex/category
_ops = st.lists(
    st.tuples(st.sampled_from(["add", "remove", "compact"]),
              st.integers(0, N_VERTICES - 1),
              st.integers(0, N_CATEGORIES - 1)),
    max_size=40,
)


def _fresh_engine():
    g = _BASE_GRAPH.copy()
    return g, KOSREngine.from_labels(g, _LABELS)


def _apply(g, engine, ops):
    for kind, v, cid in ops:
        if kind == "add":
            engine.add_vertex_to_category(v, cid)
        elif kind == "remove" and g.category_size(cid) > 1:
            engine.remove_vertex_from_category(v, cid)
        elif kind == "compact":
            engine.compact()


def _enumerate_nn(engine, source, cid):
    """Drain one (source, category) cursor: [(member, dist), ...]."""
    finder = PackedLabelNNFinder(engine.labels, engine.inverted)
    out = []
    x = 1
    while True:
        res = finder.find(source, cid, x)
        if res is None:
            return out
        out.append(res)
        x += 1


@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_removed_entries_never_surface(ops):
    g, engine = _fresh_engine()
    _apply(g, engine, ops)
    labels = engine.labels
    for cid in range(N_CATEGORIES):
        members = g.members(cid)
        for source in (0, N_VERTICES // 2, N_VERTICES - 1):
            produced = _enumerate_nn(engine, source, cid)
            got = {m for m, _ in produced}
            # nothing tombstoned (or never a member) surfaces ...
            assert got <= members
            # ... and every reachable live member does surface
            reachable = {m for m in members
                         if labels.distance(source, m) != INFINITY}
            assert got == reachable


@settings(max_examples=40, deadline=None)
@given(ops=_ops)
def test_overlay_base_merge_is_sorted(ops):
    g, engine = _fresh_engine()
    _apply(g, engine, ops)
    for il in engine.inverted.values():
        lists = il.as_lists()  # folds the whole overlay in
        assert not il.dirty
        for hub, entries in lists.items():
            assert entries == sorted(entries)
            assert entries  # empty runs are dropped from the slice maps
        # slice maps agree with each other and with the buffers
        assert sorted(il.slices.values()) == sorted(il.rank_slices.values())
        for hub, (lo, hi) in il.slices.items():
            assert 0 <= lo < hi <= len(il.members)
            assert il.hub_ranks[hub] in il.rank_slices


@settings(max_examples=25, deadline=None)
@given(ops=_ops, seed=st.integers(0, 2 ** 16))
def test_compact_is_noop_on_query_results(ops, seed):
    g, engine = _fresh_engine()
    _apply(g, engine, ops)
    rng = random.Random(seed)
    queries = []
    for _ in range(3):
        cats = rng.sample(range(N_CATEGORIES), 2)
        queries.append(make_query(g, rng.randrange(N_VERTICES),
                                  rng.randrange(N_VERTICES), cats, k=3))
    before = [engine.run(q, method="SK") for q in queries]
    engine.compact()
    for il in engine.inverted.values():
        assert not il.dirty
    after = [engine.run(q, method="SK") for q in queries]
    for a, b in zip(before, after):
        assert a.witnesses == b.witnesses
        assert a.costs == b.costs
        assert a.stats.nn_queries == b.stats.nn_queries
