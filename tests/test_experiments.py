"""Tests for the evaluation harness (workloads, runner, figures, reporting)."""

import math
import random

import pytest

from repro import KOSREngine
from repro.experiments import datasets as ds
from repro.experiments import figures
from repro.experiments.reporting import format_cell, format_table
from repro.experiments.runner import (
    INF,
    METHOD_LEGEND,
    MethodAggregate,
    run_workload,
)
from repro.experiments.workload import random_queries
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories


@pytest.fixture(scope="module", autouse=True)
def tiny_scale():
    """Pin the harness to a tiny scale so tests stay fast."""
    old_scale, old_q = ds.BENCH_SCALE, ds.BENCH_QUERIES
    ds.BENCH_SCALE, ds.BENCH_QUERIES = 0.05, 2
    ds.clear_caches()
    yield
    ds.BENCH_SCALE, ds.BENCH_QUERIES = old_scale, old_q
    ds.clear_caches()


@pytest.fixture(scope="module")
def small_case():
    g = random_graph(25, 3.0, rng=random.Random(5))
    assign_uniform_categories(g, 4, 6, random.Random(6))
    return g, KOSREngine.build(g)


class TestWorkload:
    def test_deterministic_given_seed(self, small_case):
        g, _ = small_case
        a = random_queries(g, 5, 2, 3, seed=9)
        b = random_queries(g, 5, 2, 3, seed=9)
        assert a.queries == b.queries

    def test_respects_parameters(self, small_case):
        g, _ = small_case
        w = random_queries(g, 7, 3, 4, seed=1)
        assert len(w) == 7
        for q in w:
            assert len(q.categories) == 3
            assert q.k == 4

    def test_sampling_without_replacement_when_possible(self, small_case):
        g, _ = small_case
        w = random_queries(g, 5, 4, 1, seed=2)
        for q in w:
            assert len(set(q.categories)) == 4

    def test_with_replacement_when_needed(self, small_case):
        g, _ = small_case
        w = random_queries(g, 3, 10, 1, seed=3)
        assert all(len(q.categories) == 10 for q in w)

    def test_no_eligible_categories_raises(self):
        g = random_graph(10, 2.0, rng=random.Random(0))
        with pytest.raises(ValueError):
            random_queries(g, 1, 1, 1)


class TestRunner:
    def test_aggregate_means(self, small_case):
        g, engine = small_case
        w = random_queries(g, 3, 2, 2, seed=4)
        agg = run_workload(engine, w, "SK")
        assert agg.num_queries == 3
        assert agg.unfinished == 0
        assert agg.mean_time_ms > 0
        assert agg.mean_examined > 0
        assert agg.mean_nn_queries > 0

    def test_inf_on_unfinished(self, small_case):
        g, engine = small_case
        w = random_queries(g, 2, 3, 5, seed=5)
        agg = run_workload(engine, w, "KPNE", budget=2)
        assert agg.unfinished == 1  # short-circuits after the first INF
        assert math.isinf(agg.mean_time_ms)

    def test_no_short_circuit_when_disabled(self, small_case):
        g, engine = small_case
        w = random_queries(g, 2, 3, 5, seed=5)
        agg = run_workload(engine, w, "KPNE", budget=2,
                           stop_after_first_unfinished=False)
        assert agg.unfinished == 2
        assert agg.num_queries == 2

    def test_legend_covers_paper_methods(self):
        assert set(METHOD_LEGEND) == {
            "KPNE-Dij", "PK-Dij", "SK-Dij", "KPNE", "PK", "SK", "SK-DB",
        }

    def test_gsp_label(self, small_case):
        g, engine = small_case
        w = random_queries(g, 2, 2, 1, seed=6)
        agg = run_workload(engine, w, "GSP")
        assert agg.num_queries == 2

    def test_empty_aggregate_is_inf(self):
        agg = MethodAggregate(label="x")
        assert math.isinf(agg.mean_time_ms)


class TestFigureGenerators:
    def test_fig3_overall_rows(self):
        rows, cols = figures.fig3_overall(datasets=("CAL",), methods=("PK", "SK"))
        assert {r["method"] for r in rows} == {"PK", "SK"}
        assert all(r["dataset"] == "CAL" for r in rows)
        assert set(cols) >= {"dataset", "method", "time_ms"}

    def test_fig3_effect_k_rows(self):
        rows, _ = figures.fig3_effect_k("CAL", ks=(1, 2), methods=("SK",))
        assert [r["k"] for r in rows] == [1, 2]

    def test_fig3_effect_c_rows(self):
        rows, _ = figures.fig3_effect_c("CAL", c_lens=(2, 3), methods=("SK",))
        assert [r["c_len"] for r in rows] == [2, 3]

    def test_fig3_effect_ci_rows(self):
        rows, _ = figures.fig3_effect_ci(fractions=(0.02, 0.04), methods=("SK",))
        sizes = [r["category_size"] for r in rows]
        assert sizes == sorted(sizes)

    def test_fig5_rows_have_levels(self):
        rows, cols = figures.fig5_search_space(datasets=("CAL",))
        assert rows[0]["dataset"] == "CAL"
        assert any(c.startswith("level_") for c in cols)

    def test_fig6_zipf_rows(self):
        rows, _ = figures.fig6_zipfian(factors=(1.2,), methods=("SK",))
        assert rows[0]["zipf_factor"] == 1.2

    def test_fig7_includes_gsp(self):
        rows, _ = figures.fig7_osr(datasets=("CAL",), methods=("SK", "GSP"))
        assert {r["method"] for r in rows} == {"SK", "GSP"}

    def test_table9_rows(self):
        rows, cols = figures.table9_preprocessing(datasets=("CAL",))
        assert rows[0]["graph"] == "CAL"
        assert rows[0]["label_build_s"] > 0

    def test_table10_breakdown_rows(self):
        rows, cols = figures.table10_breakdown(methods=("SK",))
        row = rows[0]
        assert row["overall_ms"] >= row["nn_query_ms"]

    def test_ablation_rows(self):
        rows, _ = figures.ablation_design_choices()
        variants = [r["variant"] for r in rows]
        assert "both (SK)" in variants and "neither (KPNE)" in variants


class TestDatasetsCache:
    def test_engine_cached(self):
        a = ds.engine_for("CAL")
        b = ds.engine_for("CAL")
        assert a is b

    def test_fla_custom_reuses_labels(self):
        base = ds.engine_for("FLA")
        custom = ds.fla_engine_with_categories(category_fraction=0.05)
        assert custom.labels is base.labels
        assert custom is not base

    def test_clear_caches(self):
        a = ds.engine_for("CAL")
        ds.clear_caches()
        assert ds.engine_for("CAL") is not a


class TestReporting:
    def test_format_cell_inf(self):
        assert format_cell(INF) == "INF"

    def test_format_cell_thousands(self):
        assert format_cell(12345.6) == "12,346"

    def test_format_table_renders(self):
        rows = [{"a": 1, "b": INF}, {"a": 2, "b": 0.5}]
        text = format_table(rows, ["a", "b"], title="T")
        assert "T" in text and "INF" in text
        assert len(text.splitlines()) == 5
