"""Tests for graph builders, dataset generators, and category assignment."""

import random

import pytest

from repro.exceptions import QueryError
from repro.graph import (
    assign_uniform_categories,
    assign_zipfian_categories,
    complete_graph,
    from_edge_list,
    grid_graph,
    path_graph,
    random_graph,
    zipfian_sizes,
)
from repro.graph import generators
from repro.paths.dijkstra import dijkstra


class TestBuilders:
    def test_from_edge_list(self):
        g = from_edge_list(3, [(0, 1, 1.0), (1, 2, 2.0)])
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_path_graph_structure(self):
        g = path_graph(4, weight=2.0)
        assert g.num_edges == 6  # 3 undirected edges
        assert g.edge_weight(1, 2) == 2.0

    def test_complete_graph(self):
        g = complete_graph(4)
        assert g.num_edges == 12

    def test_grid_graph_dimensions(self):
        g = grid_graph(3, 4, rng=random.Random(0))
        assert g.num_vertices == 12
        # interior connectivity: vertex (1,1)=5 has 4 undirected neighbors
        assert g.out_degree(5) == 4

    def test_grid_graph_connected(self):
        g = grid_graph(5, 5, rng=random.Random(1))
        dist = dijkstra(g, 0)
        assert len(dist) == 25

    def test_random_graph_connectivity_guarantee(self):
        g = random_graph(30, 2.0, rng=random.Random(3), ensure_connected=True)
        dist = dijkstra(g, 0)
        assert len(dist) == 30

    def test_random_graph_degree_target(self):
        g = random_graph(100, 4.0, rng=random.Random(4))
        assert g.num_edges >= 400

    def test_random_graph_deterministic(self):
        a = random_graph(20, 3.0, rng=random.Random(9))
        b = random_graph(20, 3.0, rng=random.Random(9))
        assert sorted(a.edges()) == sorted(b.edges())


class TestCategoryAssignment:
    def test_uniform_sizes_exact(self):
        g = grid_graph(10, 10, rng=random.Random(0))
        cids = assign_uniform_categories(g, 5, 12, random.Random(1))
        assert len(cids) == 5
        for cid in cids:
            assert g.category_size(cid) == 12

    def test_uniform_size_too_large_rejected(self):
        g = grid_graph(2, 2, rng=random.Random(0))
        with pytest.raises(QueryError):
            assign_uniform_categories(g, 1, 100)

    def test_zipfian_sizes_monotone_decreasing(self):
        sizes = zipfian_sizes(10, 1000, 1.2)
        assert sizes == sorted(sizes, reverse=True)
        assert all(s >= 1 for s in sizes)

    def test_zipfian_less_skew_with_larger_factor(self):
        skewed = zipfian_sizes(10, 1000, 1.2)
        flat = zipfian_sizes(10, 1000, 1.8)
        assert skewed[0] / skewed[-1] > flat[0] / flat[-1]

    def test_zipfian_factor_below_one_rejected(self):
        with pytest.raises(QueryError):
            zipfian_sizes(5, 100, 0.5)

    def test_zipfian_assignment(self):
        g = grid_graph(12, 12, rng=random.Random(0))
        cids = assign_zipfian_categories(g, 6, 1.4, rng=random.Random(2))
        sizes = [g.category_size(c) for c in cids]
        assert sizes == sorted(sizes, reverse=True)


class TestDatasetGenerators:
    @pytest.mark.parametrize("name", generators.DATASET_NAMES)
    def test_analogue_has_categories(self, name):
        g = generators.dataset_by_name(name, scale=0.1)
        assert g.num_vertices > 0
        assert g.num_categories > 0
        assert any(g.category_size(c) >= 2 for c in range(g.num_categories))

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            generators.dataset_by_name("MOON")

    def test_gplus_unit_weights(self):
        g = generators.gplus(scale=0.1)
        assert all(w == 1.0 for _, _, w in g.edges())

    def test_gplus_small_diameter(self):
        g = generators.gplus(scale=0.2)
        dist = dijkstra(g, 0)
        assert len(dist) == g.num_vertices
        assert max(dist.values()) <= 8

    def test_cal_undirected_symmetry(self):
        g = generators.cal(scale=0.1)
        for u, v, w in g.edges():
            assert g.has_edge(v, u)
            assert g.edge_weight(v, u) == w

    def test_fla_directed_strongly_connected(self):
        g = generators.fla(scale=0.1)
        assert len(dijkstra(g, 0)) == g.num_vertices
        assert len(dijkstra(g, 0, reverse=True)) == g.num_vertices

    def test_fla_zipf_variant(self):
        g = generators.fla(scale=0.1, zipf_factor=1.2)
        sizes = [g.category_size(c) for c in range(g.num_categories)]
        assert sizes == sorted(sizes, reverse=True)

    def test_fla_topology_independent_of_categories(self):
        a = generators.fla(scale=0.1, category_fraction=0.01)
        b = generators.fla(scale=0.1, category_fraction=0.05)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_generators_deterministic(self):
        a = generators.col(scale=0.1)
        b = generators.col(scale=0.1)
        assert sorted(a.edges()) == sorted(b.edges())
        assert [a.members(c) for c in range(a.num_categories)] == [
            b.members(c) for c in range(b.num_categories)
        ]

    def test_road_network_directed_asymmetric_weights(self):
        g = generators.road_network(5, 5, seed=3, directed=True, travel_time=True)
        asymmetric = [
            (u, v) for u, v, w in g.edges()
            if g.has_edge(v, u) and g.edge_weight(v, u) != w
        ]
        assert asymmetric, "directed travel times should differ per direction"

    def test_social_network_tiny_n_is_clique(self):
        g = generators.social_network(5, attach=8)
        assert g.num_edges == 20
