"""Tests for workload freezing and CSV result export."""

import math
import random

import pytest

from repro.experiments.persistence import (
    load_workload,
    read_rows_csv,
    save_workload,
    write_rows_csv,
)
from repro.experiments.workload import random_queries
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories


@pytest.fixture
def workload():
    g = random_graph(25, 2.5, rng=random.Random(3))
    assign_uniform_categories(g, 3, 6, random.Random(4))
    return random_queries(g, 5, 2, 3, seed=9)


class TestWorkloadPersistence:
    def test_round_trip(self, workload, tmp_path):
        path = tmp_path / "w.json"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert loaded.queries == workload.queries

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "w.json"
        path.write_text('{"version": 99, "queries": []}')
        with pytest.raises(ValueError):
            load_workload(path)

    def test_empty_workload(self, tmp_path):
        from repro.experiments.workload import Workload

        path = tmp_path / "w.json"
        save_workload(Workload([]), path)
        assert load_workload(path).queries == []


class TestCsvExport:
    ROWS = [
        {"dataset": "CAL", "method": "SK", "time_ms": 5.25},
        {"dataset": "FLA", "method": "KPNE", "time_ms": math.inf},
    ]

    def test_round_trip_with_inf(self, tmp_path):
        path = tmp_path / "r.csv"
        write_rows_csv(self.ROWS, ["dataset", "method", "time_ms"], path)
        rows = read_rows_csv(path)
        assert rows[0]["time_ms"] == "5.25"
        assert rows[1]["time_ms"] == "INF"

    def test_extra_keys_ignored(self, tmp_path):
        path = tmp_path / "r.csv"
        write_rows_csv([{"a": 1, "b": 2}], ["a"], path)
        assert read_rows_csv(path) == [{"a": "1"}]

    def test_missing_keys_blank(self, tmp_path):
        path = tmp_path / "r.csv"
        write_rows_csv([{"a": 1}], ["a", "b"], path)
        assert read_rows_csv(path)[0]["b"] == ""
