"""Tests for the KOSREngine facade: dispatch, SK-DB, route restoration."""

import random

import pytest

from repro import KOSREngine, brute_force_kosr, make_query
from repro.exceptions import QueryError
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.graph.paper import paper_figure1_graph, vertex


@pytest.fixture(scope="module")
def case():
    g = random_graph(30, 3.0, rng=random.Random(2))
    assign_uniform_categories(g, 3, 6, random.Random(3))
    return g, KOSREngine.build(g, name="case")


class TestBuild:
    def test_preprocessing_stats_populated(self, case):
        _, engine = case
        p = engine.preprocessing
        assert p.num_vertices == 30
        assert p.label_build_seconds > 0
        assert p.avg_lin > 0 and p.avg_lout > 0
        assert p.label_entries > 0
        assert p.inverted_entries > 0
        assert p.label_bytes == p.label_entries * p.BYTES_PER_ENTRY

    def test_from_labels_skips_label_build(self, case):
        g, engine = case
        rebuilt = KOSREngine.from_labels(g, engine.labels, name="reuse")
        assert rebuilt.preprocessing.label_build_seconds == 0.0
        q = make_query(g, 0, 9, [0, 1], 3)
        assert rebuilt.run(q).costs == engine.run(q).costs


class TestDispatch:
    def test_unknown_method_rejected(self, case):
        _, engine = case
        with pytest.raises(QueryError):
            engine.query(0, 1, [0], method="WARP")

    def test_unknown_backend_rejected(self, case):
        _, engine = case
        with pytest.raises(QueryError):
            engine.query(0, 1, [0], nn_backend="psychic")

    def test_label_backend_requires_index(self, case):
        g, _ = case
        bare = KOSREngine(g)
        with pytest.raises(QueryError):
            bare.query(0, 1, [0], method="PK")

    def test_dij_backend_works_without_index(self, case):
        g, engine = case
        bare = KOSREngine(g)
        q = make_query(g, 0, 9, [0, 1], 3)
        expected = engine.run(q, method="PK").costs
        got = bare.run(q, method="PK", nn_backend="dij-restart").costs
        assert got == pytest.approx(expected)

    def test_gsp_via_engine(self, case):
        g, engine = case
        q = make_query(g, 0, 9, [0, 1], 1)
        gsp = engine.run(q, method="GSP").costs
        sk = engine.run(q, method="SK").costs
        assert gsp == pytest.approx(sk)

    def test_result_accessors(self, case):
        g, engine = case
        res = engine.query(0, 9, [0, 1], k=3)
        assert len(res.costs) == len(res.witnesses) == len(res.results)
        assert res.query.k == 3


class TestDiskStore:
    def test_sk_db_matches_sk(self, case, tmp_path):
        g, engine = case
        engine.attach_disk_store(tmp_path)
        q = make_query(g, 0, 9, [0, 1, 2], 4)
        assert engine.run(q, method="SK-DB").costs == pytest.approx(
            engine.run(q, method="SK").costs
        )

    def test_sk_db_without_store_rejected(self, case):
        g, _ = case
        fresh = KOSREngine.build(g)
        with pytest.raises(QueryError):
            fresh.query(0, 1, [0], method="SK-DB")

    def test_sk_db_records_load_time(self, case, tmp_path):
        g, engine = case
        engine.attach_disk_store(tmp_path)
        q = make_query(g, 0, 9, [0, 1], 2)
        stats = engine.run(q, method="SK-DB").stats
        assert stats.index_load_time > 0

    def test_attach_requires_built_index(self, case, tmp_path):
        g, _ = case
        bare = KOSREngine(g)
        with pytest.raises(QueryError):
            bare.attach_disk_store(tmp_path)


class TestRouteRestoration:
    def test_routes_realise_witness_costs(self):
        fig1 = paper_figure1_graph()
        engine = KOSREngine.build(fig1)
        res = engine.query(vertex("s"), vertex("t"), ["MA", "RE", "CI"],
                           k=3, method="SK", restore_routes=True)
        for item in res.results:
            route = item.route
            assert route is not None
            assert route.vertices[0] == vertex("s")
            assert route.vertices[-1] == vertex("t")
            walked = sum(
                fig1.edge_weight(a, b)
                for a, b in zip(route.vertices, route.vertices[1:])
            )
            assert walked == pytest.approx(item.cost)
            assert route.cost == pytest.approx(item.cost)

    def test_restored_route_visits_categories_in_order(self):
        fig1 = paper_figure1_graph()
        engine = KOSREngine.build(fig1)
        res = engine.query(vertex("s"), vertex("t"), ["MA", "RE", "CI"],
                           k=1, restore_routes=True)
        route = res.results[0].route.vertices
        witness = res.results[0].witness.vertices
        positions = [route.index(v) for v in witness]
        assert positions == sorted(positions)


class TestStrictBudget:
    def test_strict_budget_raises(self, case):
        from repro.exceptions import BudgetExceededError

        g, engine = case
        q = make_query(g, 0, 9, [0, 1, 2], 10)
        with pytest.raises(BudgetExceededError):
            engine.run(q, method="KPNE", budget=2, strict_budget=True)

    def test_non_strict_returns_partial(self, case):
        g, engine = case
        q = make_query(g, 0, 9, [0, 1, 2], 10)
        res = engine.run(q, method="KPNE", budget=2)
        assert not res.stats.completed
