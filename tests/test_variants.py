"""Tests for the Sec. IV-C query variants."""

import random

import pytest

from repro import (
    KOSREngine,
    brute_force_kosr,
    kosr_with_preferences,
    kosr_without_destination,
    kosr_without_source,
    make_query,
    pruning_kosr,
)
from repro.core.stats import QueryStats
from repro.graph import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.graph.paper import names, paper_figure1_graph, vertex
from repro.nn.label_nn import LabelNNFinder


@pytest.fixture(scope="module")
def fig1():
    return paper_figure1_graph()


@pytest.fixture(scope="module")
def fig1_engine(fig1):
    return KOSREngine.build(fig1)


class TestNoSource:
    def test_best_start_found(self, fig1):
        results = kosr_without_source(fig1, vertex("t"), ["RE", "CI"], k=2)
        # Starting at any restaurant: best is b -> d -> t = 3 + 4 = 7.
        assert results[0].cost == 7.0
        assert names(results[0].witness.vertices) == ("b", "d", "t")

    def test_matches_min_over_fixed_sources(self, fig1):
        re_members = sorted(fig1.members(fig1.category_id("RE")))
        per_source = []
        for m in re_members:
            q = make_query(fig1, m, vertex("t"), ["CI"], 1)
            got = brute_force_kosr(fig1, q)
            if got:
                per_source.append(got[0].cost)
        expected = min(per_source)
        results = kosr_without_source(fig1, vertex("t"), ["RE", "CI"], k=1)
        assert results[0].cost == expected

    def test_seeded_queue_equivalent(self, fig1, fig1_engine):
        """The paper's formulation (seed the queue with all C1 members)
        matches the virtual-vertex reduction."""
        re = fig1.category_id("RE")
        ci = fig1.category_id("CI")
        # Seeded run: query whose "source" slot is unused.
        finder = LabelNNFinder.from_index(fig1_engine.labels, fig1_engine.inverted)
        q = make_query(fig1, vertex("b"), vertex("t"), [ci], 2)
        seeded = pruning_kosr(
            q, finder, QueryStats(),
            sources=[(m, 0.0) for m in sorted(fig1.members(re))],
        )
        reduced = kosr_without_source(fig1, vertex("t"), ["RE", "CI"], k=2)
        assert [r.cost for r in seeded] == [r.cost for r in reduced]


class TestNoDestination:
    def test_route_ends_after_last_category(self, fig1):
        results = kosr_without_destination(fig1, vertex("s"), ["MA", "RE"], k=1)
        # s -> a (8) -> b (5) = 13 is the cheapest mall-then-restaurant trip.
        assert results[0].cost == 13.0
        assert names(results[0].witness.vertices) == ("s", "a", "b")

    def test_sk_agrees_with_pk(self, fig1):
        pk = kosr_without_destination(fig1, vertex("s"), ["MA", "RE"], k=3,
                                      method="PK")
        sk = kosr_without_destination(fig1, vertex("s"), ["MA", "RE"], k=3,
                                      method="SK")
        assert [r.cost for r in pk] == [r.cost for r in sk]

    def test_matches_min_over_fixed_destinations(self, fig1):
        re_members = sorted(fig1.members(fig1.category_id("RE")))
        best = min(
            brute_force_kosr(
                fig1, make_query(fig1, vertex("s"), m, ["MA", "RE"], 1)
            )[0].cost
            for m in re_members
            # route to m itself passing MA then RE: witness ends at RE vertex m
        )
        results = kosr_without_destination(fig1, vertex("s"), ["MA", "RE"], k=1)
        assert results[0].cost <= best


class TestPreferences:
    def test_exclude_preferred_restaurant(self, fig1, fig1_engine):
        """Alice prefers restaurant e: restrict RE to {e}."""
        e = vertex("e")
        res = kosr_with_preferences(
            fig1_engine, vertex("s"), vertex("t"), ["MA", "RE", "CI"],
            predicates={"RE": lambda v: v == e}, k=2, method="SK",
        )
        assert res.costs[0] == 21.0  # s a e d t
        for witness in res.witnesses:
            assert e in witness

    def test_predicate_on_multiple_categories(self, fig1, fig1_engine):
        a, d = vertex("a"), vertex("d")
        res = kosr_with_preferences(
            fig1_engine, vertex("s"), vertex("t"), ["MA", "RE", "CI"],
            predicates={"MA": lambda v: v == a, "CI": lambda v: v == d},
            k=5, method="PK",
        )
        for witness in res.witnesses:
            assert witness[1] == a and witness[3] == d

    def test_unsatisfiable_predicate_yields_empty(self, fig1, fig1_engine):
        res = kosr_with_preferences(
            fig1_engine, vertex("s"), vertex("t"), ["MA", "RE"],
            predicates={"MA": lambda v: False}, k=2,
        )
        assert res.results == []

    def test_matches_filtered_brute_force(self):
        g = random_graph(25, 3.0, rng=random.Random(31))
        assign_uniform_categories(g, 2, 8, random.Random(32))
        engine = KOSREngine.build(g)
        allowed = set(sorted(g.members(0))[:3])
        res = kosr_with_preferences(
            engine, 0, 9, [0, 1], predicates={0: lambda v: v in allowed}, k=4,
        )
        # Brute force on a copy whose category 0 is restricted to `allowed`.
        g2 = g.copy()
        for m in list(g2.members(0)):
            if m not in allowed:
                g2.unassign_category(m, 0)
        expected = brute_force_kosr(g2, make_query(g2, 0, 9, [0, 1], 4))
        assert res.costs == pytest.approx([r.cost for r in expected])

    def test_unsupported_method_rejected(self, fig1_engine):
        with pytest.raises(ValueError):
            kosr_with_preferences(
                fig1_engine, vertex("s"), vertex("t"), ["MA"],
                predicates={}, method="GSP",
            )
