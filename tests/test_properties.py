"""Property-based tests (hypothesis) on the core invariants.

Strategies generate small random directed weighted graphs with categories;
properties assert the paper's central claims hold on *arbitrary* inputs:
label distances are exact, CH distances are exact, FindNN enumerates in
distance order, every KOSR method agrees with brute force, the heuristic is
admissible, and dominance never discards a better completion.
"""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import KOSREngine, KOSRQuery, brute_force_kosr
from repro.ch import build_ch, ch_distance
from repro.graph import Graph
from repro.labeling import build_inverted_indexes, build_pruned_landmark_labels
from repro.nn import EstimatedNNFinder, LabelNNFinder
from repro.paths.dijkstra import dijkstra, dijkstra_distance
from repro.types import INFINITY

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, min_vertices=2, max_vertices=14, num_categories=0):
    """A small random digraph; weights are integers to avoid FP ties."""
    n = draw(st.integers(min_vertices, max_vertices))
    edge_count = draw(st.integers(0, min(40, n * (n - 1))))
    g = Graph(n)
    seed = draw(st.integers(0, 2**31))
    rng = random.Random(seed)
    for _ in range(edge_count):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            g.add_edge(u, v, float(rng.randint(1, 20)))
    for c in range(num_categories):
        cid = g.add_category(f"c{c}")
        size = rng.randint(1, max(1, n // 2))
        for vtx in rng.sample(range(n), size):
            g.assign_category(vtx, cid)
    return g


class TestLabelProperties:
    @SETTINGS
    @given(graphs())
    def test_pll_distances_equal_dijkstra(self, g):
        labels = build_pruned_landmark_labels(g)
        for s in range(g.num_vertices):
            dist = dijkstra(g, s)
            for t in range(g.num_vertices):
                assert labels.distance(s, t) == pytest.approx(
                    dist.get(t, INFINITY)
                )

    @SETTINGS
    @given(graphs())
    def test_pll_paths_are_walkable(self, g):
        labels = build_pruned_landmark_labels(g)
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                cost, path = labels.path(s, t)
                if cost == INFINITY:
                    assert path == []
                    continue
                assert path[0] == s and path[-1] == t
                walked = sum(
                    g.edge_weight(a, b) for a, b in zip(path, path[1:])
                )
                assert walked == pytest.approx(cost)

    @SETTINGS
    @given(graphs())
    def test_label_entries_sorted_by_rank(self, g):
        labels = build_pruned_landmark_labels(g)
        for v in range(g.num_vertices):
            for entries in (labels.lin(v), labels.lout(v)):
                ranks = [e.hub_rank for e in entries]
                assert ranks == sorted(ranks)


class TestCHProperties:
    @SETTINGS
    @given(graphs())
    def test_ch_distances_equal_dijkstra(self, g):
        ch = build_ch(g)
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                assert ch_distance(ch, s, t) == pytest.approx(
                    dijkstra_distance(g, s, t)
                )


class TestFindNNProperties:
    @SETTINGS
    @given(graphs(num_categories=2))
    def test_enumeration_matches_sorted_dijkstra(self, g):
        labels = build_pruned_landmark_labels(g)
        inverted = build_inverted_indexes(g, labels)
        finder = LabelNNFinder.from_index(labels, inverted)
        for source in range(g.num_vertices):
            for cid in range(g.num_categories):
                dist = dijkstra(g, source)
                expected = sorted(
                    dist[m] for m in g.members(cid) if m in dist
                )
                got = []
                x = 1
                while True:
                    res = finder.find(source, cid, x)
                    if res is None:
                        break
                    got.append(res[1])
                    x += 1
                assert got == pytest.approx(expected)

    @SETTINGS
    @given(graphs(num_categories=1))
    def test_estimated_order_sorted_and_admissible(self, g):
        labels = build_pruned_landmark_labels(g)
        inverted = build_inverted_indexes(g, labels)
        target = g.num_vertices - 1
        base = LabelNNFinder.from_index(labels, inverted)
        est = EstimatedNNFinder(base, lambda v: labels.distance(v, target))
        for source in range(g.num_vertices):
            seq = []
            x = 1
            while True:
                res = est.find(source, 0, x)
                if res is None:
                    break
                seq.append(res)
                x += 1
            estimates = [e for _, _, e in seq]
            assert estimates == sorted(estimates)
            for member, leg, estimate in seq:
                # admissibility: estimate lower-bounds leg + true remaining
                assert estimate <= leg + labels.distance(member, target) + 1e-9


class TestKOSRProperties:
    @SETTINGS
    @given(graphs(min_vertices=3, max_vertices=12, num_categories=2),
           st.integers(1, 4))
    def test_all_methods_agree_with_brute_force(self, g, k):
        if any(g.category_size(c) == 0 for c in range(2)):
            return
        engine = KOSREngine.build(g)
        rng = random.Random(0)
        q = KOSRQuery(rng.randrange(g.num_vertices),
                      rng.randrange(g.num_vertices), (0, 1), k)
        expected = [r.cost for r in brute_force_kosr(g, q)]
        for method in ("KPNE", "PK", "SK", "SK-NODOM"):
            got = engine.run(q, method=method).costs
            assert got == pytest.approx(expected), method

    @SETTINGS
    @given(graphs(min_vertices=3, max_vertices=12, num_categories=1))
    def test_results_sorted_and_witnesses_valid(self, g):
        if g.category_size(0) == 0:
            return
        engine = KOSREngine.build(g)
        q = KOSRQuery(0, g.num_vertices - 1, (0,), 5)
        res = engine.run(q, method="SK")
        costs = res.costs
        assert costs == sorted(costs)
        for witness in res.witnesses:
            assert witness[0] == q.source
            assert witness[-1] == q.target
            assert g.has_category(witness[1], 0)

    @SETTINGS
    @given(graphs(min_vertices=3, max_vertices=12, num_categories=2))
    def test_heuristic_never_examines_more_with_exact_results(self, g):
        if any(g.category_size(c) == 0 for c in range(2)):
            return
        engine = KOSREngine.build(g)
        q = KOSRQuery(0, g.num_vertices - 1, (0, 1), 2)
        pk = engine.run(q, method="PK")
        sk = engine.run(q, method="SK")
        assert sk.costs == pytest.approx(pk.costs)

    @SETTINGS
    @given(graphs(min_vertices=3, max_vertices=10, num_categories=2))
    def test_gsp_matches_star_at_k1(self, g):
        if any(g.category_size(c) == 0 for c in range(2)):
            return
        engine = KOSREngine.build(g)
        q = KOSRQuery(0, g.num_vertices - 1, (0, 1), 1)
        sk = engine.run(q, method="SK").costs
        gsp = engine.run(q, method="GSP").costs
        assert gsp == pytest.approx(sk)
