"""Supplemental coverage: branches not exercised by the per-module suites."""

import math
import random

import pytest

from repro import KOSREngine
from repro.exceptions import IndexBuildError
from repro.experiments import datasets as ds
from repro.experiments import figures
from repro.experiments.charts import bar_chart
from repro.experiments.runner import run_workload
from repro.experiments.workload import Workload, random_queries
from repro.graph import from_edge_list, random_graph
from repro.graph.categories import assign_uniform_categories
from repro.graph.categories import zipfian_sizes
from repro.graph.generators import social_network
from repro.labeling import PackedLabelIndex, build_pruned_landmark_labels
from repro.paths.dijkstra import dijkstra_distance


@pytest.fixture(scope="module", autouse=True)
def tiny_scale():
    old_scale, old_q = ds.BENCH_SCALE, ds.BENCH_QUERIES
    ds.BENCH_SCALE, ds.BENCH_QUERIES = 0.05, 2
    ds.clear_caches()
    yield
    ds.BENCH_SCALE, ds.BENCH_QUERIES = old_scale, old_q
    ds.clear_caches()


class TestFiguresDijPath:
    def test_dij_methods_use_truncated_workload(self):
        rows, _ = figures.fig3_overall(datasets=("CAL",),
                                       methods=("SK-Dij", "SK"))
        by = {r["method"]: r for r in rows}
        assert by["SK-Dij"]["examined_routes"] > 0
        # identical search behaviour per query, fewer queries sampled
        assert by["SK"]["nn_queries"] > 0

    def test_fig7_gsp_ch_runs(self):
        rows, _ = figures.fig7_osr(datasets=("CAL",), methods=("GSP", "GSP-CH"))
        by = {r["method"]: r for r in rows}
        assert not math.isinf(by["GSP-CH"]["time_ms"])


class TestRunnerSkDb:
    def test_run_workload_sk_db_attaches_store(self):
        engine = ds.engine_for("CAL")
        workload = random_queries(engine.graph, 1, 2, 2, seed=3)
        agg = run_workload(engine, workload, "SK-DB")
        assert agg.index_load_time_s > 0
        # second run reuses the already-attached store
        agg2 = run_workload(engine, workload, "SK-DB")
        assert agg2.num_queries == 1


class TestPackedErrorBranch:
    def test_find_parent_missing_hub_raises(self):
        g = from_edge_list(3, [(0, 1, 1.0), (1, 2, 1.0)])
        packed = PackedLabelIndex.from_index(build_pruned_landmark_labels(g))
        with pytest.raises(IndexBuildError):
            packed._find_parent(packed._lout, 0, hub_rank=999)


class TestChartEdges:
    def test_equal_values_full_bar(self):
        rows = [{"m": "a", "v": 2.0}, {"m": "b", "v": 2.0}]
        text = bar_chart(rows, ["m"], "v", log=False)
        assert text.count("#") > 0

    def test_all_inf(self):
        rows = [{"m": "a", "v": math.inf}]
        text = bar_chart(rows, ["m"], "v")
        assert "INF" in text


class TestGeneratorsDetails:
    def test_zipfian_sizes_total_close_to_target(self):
        sizes = zipfian_sizes(20, 5000, 1.6)
        assert abs(sum(sizes) - 5000) < 5000 * 0.15

    def test_social_network_degree_skew(self):
        g = social_network(200, attach=5, seed=1)
        degrees = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        # preferential attachment: the top vertex is well above the median
        assert degrees[0] > 3 * degrees[len(degrees) // 2]

    def test_reversed_graph_swaps_distances(self):
        g = random_graph(25, 2.5, rng=random.Random(55))
        rev = g.reversed()
        rng = random.Random(56)
        for _ in range(10):
            s, t = rng.randrange(25), rng.randrange(25)
            assert dijkstra_distance(rev, t, s) == pytest.approx(
                dijkstra_distance(g, s, t)
            )


class TestEngineGspChParity:
    def test_gsp_ch_through_engine_on_dataset(self):
        engine = ds.engine_for("COL")
        workload = random_queries(engine.graph, 2, 2, 1, seed=7)
        for q in workload:
            a = engine.run(q, method="GSP").costs
            b = engine.run(q, method="GSP-CH").costs
            assert b == pytest.approx(a)


class TestWorkloadContainer:
    def test_len_and_iter(self):
        g = random_graph(10, 2.0, rng=random.Random(1))
        assign_uniform_categories(g, 1, 3, random.Random(2))
        w = random_queries(g, 4, 1, 1, seed=1)
        assert len(w) == 4
        assert len(list(w)) == 4
        assert len(Workload([])) == 0
