"""Sharded multi-process serving: routing, parity, updates, lifecycle.

The invariant under test everywhere: sharding is observably transparent.
Whatever the partition, fan-out, or update interleaving, every answer —
results AND ``QueryStats`` counters — is bit-identical to a fresh
unsharded cold engine over the same state.
"""

import asyncio
import json
import random

import pytest

from repro import (
    KOSREngine,
    QueryOptions,
    QueryRequest,
    ShardedQueryService,
    make_query,
)
from repro.exceptions import QueryError, ShardError
from repro.graph.builders import random_graph
from repro.graph.categories import assign_uniform_categories
from repro.shard.router import CategoryShardRouter, merge_topk_results

from test_backend_parity import assert_same_outcome


def _graph(seed: int, n: int = 40, cats: int = 4, size: int = 7):
    g = random_graph(n, avg_out_degree=2.8, rng=random.Random(seed))
    assign_uniform_categories(g, cats, size, random.Random(seed + 1))
    return g


@pytest.fixture(scope="module")
def setting():
    """One engine + one 2-shard service over the same graph/labels."""
    engine = KOSREngine.build(_graph(83))
    sharded = ShardedQueryService.from_engine(engine, num_shards=2)
    yield engine, sharded
    sharded.close()


class TestRouter:
    def test_modulo_ownership(self):
        router = CategoryShardRouter(3)
        assert [router.shard_of(c) for c in range(6)] == [0, 1, 2, 0, 1, 2]
        assert router.owned_categories(1, 6) == [1, 4]

    def test_owners_primary_first_and_deduped(self):
        router = CategoryShardRouter(2)
        assert router.owners((3, 0, 1)) == [1, 0]   # 3 -> 1 first
        assert router.owners((0, 2)) == [0]
        assert router.spans_shards((0, 1))
        assert not router.spans_shards((0, 2))

    def test_single_partial_merge_is_identity(self, setting):
        engine, _ = setting
        q = make_query(engine.graph, 0, 30, [0], k=3)
        result = engine.run(q)
        assert merge_topk_results(q, [result]) is result

    def test_merge_of_identical_lists_reconstructs_primary(self, setting):
        engine, _ = setting
        q = make_query(engine.graph, 0, 30, [0, 1], k=4)
        a, b = engine.run(q), engine.run(q)
        merged = merge_topk_results(q, [a, b])
        assert merged.witnesses == a.witnesses
        assert merged.costs == a.costs
        assert merged.stats is a.stats  # primary's counters, untouched

    def test_rejects_empty_partition(self):
        with pytest.raises(ValueError):
            CategoryShardRouter(0)

    def test_merge_never_reorders_within_a_list(self, setting):
        """1-ULP cost 'ties' keep the search's discovery order.

        An engine's result list may contain equal-cost routes whose
        reported floats differ in the last bit (summation order), listed
        in discovery order rather than strict float order.  The merge
        must be stable within each shard's list or fan-out would flip
        such pairs (regression: a global re-sort by cost did).
        """
        from repro.core.engine import KOSRResult
        from repro.core.stats import QueryStats
        from repro.types import SequencedResult, Witness

        engine, _ = setting
        q = make_query(engine.graph, 0, 30, [0, 1], k=3)
        hi = 10.000000000000002   # listed first by the search...
        lo = 10.0                 # ...despite being 1 ULP cheaper
        items = [SequencedResult(Witness((0, 5, 9, 30), 9.0)),
                 SequencedResult(Witness((0, 5, 8, 30), hi)),
                 SequencedResult(Witness((0, 6, 8, 30), lo))]
        partials = [KOSRResult(q, list(items), QueryStats(method="SK")),
                    KOSRResult(q, list(items), QueryStats(method="SK"))]
        merged = merge_topk_results(q, partials)
        assert [r.witness.vertices for r in merged.results] == \
            [r.witness.vertices for r in items]


class TestShardedParity:
    @pytest.mark.parametrize("method", ["SK", "PK", "KPNE", "SK-NODOM"])
    def test_methods_match_unsharded_cold(self, setting, method):
        engine, sharded = setting
        rng = random.Random(11)
        options = QueryOptions(method=method)
        for _ in range(4):
            q = make_query(
                engine.graph, rng.randrange(40), rng.randrange(40),
                rng.sample(range(4), rng.randint(1, 3)), k=3)
            assert_same_outcome(sharded.run(q, options), engine.run(q, options))

    def test_spanning_request_bit_identical(self, setting):
        """Categories 0 (shard 0) and 1 (shard 1): fan out + merge."""
        engine, sharded = setting
        q = make_query(engine.graph, 1, 30, [0, 1], k=5)
        assert sharded.router.owners(q.categories) == [0, 1]
        assert_same_outcome(sharded.run(q, QueryOptions()), engine.run(q))

    def test_topology_only_fleet_serves_gsp_and_rejects_label_plans(self):
        """build_labels=False skips the dominant startup cost for GSP."""
        g = _graph(67)
        engine = KOSREngine(g)  # bare engine: the unsharded GSP setup
        sharded = ShardedQueryService(g.copy(), 2, build_labels=False)
        try:
            assert sharded.labels is None
            q = sharded.make_query(0, 30, [0, 1], k=1)
            options = QueryOptions(method="GSP")
            assert_same_outcome(sharded.run(q, options),
                                engine.run(q, options))
            with pytest.raises(QueryError, match="without labels"):
                sharded.run(q, QueryOptions(method="SK"))
        finally:
            sharded.close()

    def test_gsp_routes_round_robin(self, setting):
        engine, sharded = setting
        q = make_query(engine.graph, 0, 30, [0, 1], k=1)
        options = QueryOptions(method="GSP")
        owners = {tuple(sharded.owners_for(q, options)) for _ in range(4)}
        assert owners == {(0,), (1,)}  # alternates across the fleet
        assert_same_outcome(sharded.run(q, options), engine.run(q, options))

    def test_query_request_objects_accepted(self, setting):
        engine, sharded = setting
        q = make_query(engine.graph, 2, 31, [1, 2], k=2)
        request = QueryRequest(q, QueryOptions(method="PK"))
        assert_same_outcome(sharded.run(request),
                            engine.run(q, QueryOptions(method="PK")))

    def test_sk_db_rejected(self, setting):
        _, sharded = setting
        q = make_query(sharded.graph, 0, 30, [0], k=1)
        with pytest.raises(QueryError, match="SK-DB"):
            sharded.run(q, QueryOptions(method="SK-DB"))

    def test_update_edge_live_parity(self):
        """Edge updates apply fleet-wide without a restart.

        Answers after the epoch-fenced swap must be bit-identical to a
        fresh unsharded engine built from the post-update graph.
        """
        from repro.labeling.updates import apply_edge_mutation

        g = _graph(31)
        sharded = ShardedQueryService(g.copy(), 2)
        try:
            q = sharded.make_query(0, 30, [0, 1], k=3)
            sharded.run(q, QueryOptions())  # warm the old index first
            sharded.update_edge(0, 1, 0.25)

            expected = g.copy()
            apply_edge_mutation(expected, 0, 1, 0.25)
            fresh = KOSREngine.build(expected)
            assert_same_outcome(sharded.run(q, QueryOptions()),
                                fresh.run(q))
        finally:
            sharded.close()

    def test_update_edge_rejected_on_topology_only_fleet(self):
        sharded = ShardedQueryService(_graph(31), 2, build_labels=False)
        try:
            with pytest.raises(QueryError, match="build_labels=False"):
                sharded.update_edge(0, 1, 2.0)
        finally:
            sharded.close()

    def test_update_edge_bad_delete_leaves_fleet_serving(self):
        """Deleting a missing edge raises before any state moves."""
        g = _graph(31)
        sharded = ShardedQueryService(g.copy(), 2)
        try:
            present = {(a, b) for a, b, _ in g.edges()}
            u, v = next((u, v) for u in range(5) for v in range(5, 12)
                        if (u, v) not in present)
            with pytest.raises(KeyError):
                sharded.update_edge(u, v, None)
            q = sharded.make_query(0, 30, [0, 1], k=2)
            fresh = KOSREngine.build(g.copy())
            assert_same_outcome(sharded.run(q, QueryOptions()),
                                fresh.run(q))
        finally:
            sharded.close()

    def test_strict_budget_error_crosses_the_process_boundary(self, setting):
        from repro.exceptions import BudgetExceededError

        _, sharded = setting
        q = make_query(sharded.graph, 0, 30, [0, 1, 2], k=5)
        with pytest.raises(BudgetExceededError) as info:
            sharded.run(q, QueryOptions(budget=1, strict_budget=True))
        assert info.value.budget == 1  # __reduce__ preserved the payload


class TestShardedBatch:
    def test_batch_order_parity_and_groups(self, setting):
        engine, sharded = setting
        rng = random.Random(29)
        queries = [make_query(engine.graph, rng.randrange(40),
                              rng.randrange(40),
                              rng.sample(range(4), rng.randint(1, 2)), k=2)
                   for _ in range(12)]
        options = QueryOptions(method="SK")
        batch = sharded.run_batch(queries, options)
        assert len(batch) == len(queries)
        for q, got in zip(queries, batch):
            assert_same_outcome(got, engine.run(q, options))
        assert batch.num_groups >= 1
        lookups = (batch.cache_stats["finder_misses"]
                   + batch.cache_stats["finder_hits"])
        assert lookups >= len(queries)  # the whole batch ran warm-path

    def test_batch_cache_stats_are_per_batch_deltas(self, setting):
        _, sharded = setting
        q = make_query(sharded.graph, 0, 30, [0], k=1)
        first = sharded.run_batch([q], QueryOptions())
        second = sharded.run_batch([q], QueryOptions())
        # The second batch re-serves a warm target: hits, not misses —
        # and the deltas cover only that batch's single lookup.
        assert second.cache_stats["dest_kernel_hits"] == 1
        assert second.cache_stats["dest_kernel_misses"] == 0
        assert (first.cache_stats["dest_kernel_hits"]
                + first.cache_stats["dest_kernel_misses"]) == 1


class TestUpdateBroadcast:
    def test_spanning_query_after_interleaved_update(self):
        """Straddling request parity, before and after a broadcast update.

        The update targets a category on shard 1 while the spanning
        request also needs shard 0 — both the owning shard's patched
        index and the other shard's fault-in path must observe it.
        """
        g = _graph(19, cats=4)
        sharded = ShardedQueryService(g.copy(), 2)
        try:
            q = sharded.make_query(1, 30, [0, 1], k=4)
            before_ref = KOSREngine.build(sharded.graph.copy())
            assert_same_outcome(sharded.run(q, QueryOptions()),
                                before_ref.run(q))

            moved = next(v for v in range(g.num_vertices)
                         if not sharded.graph.has_category(v, 1))
            sharded.add_vertex_to_category(moved, 1)
            assert sharded.graph.has_category(moved, 1)

            after_ref = KOSREngine.build(sharded.graph.copy())
            assert_same_outcome(sharded.run(q, QueryOptions()),
                                after_ref.run(q))

            sharded.remove_vertex_from_category(moved, 1)
            removed_ref = KOSREngine.build(sharded.graph.copy())
            assert_same_outcome(sharded.run(q, QueryOptions()),
                                removed_ref.run(q))
        finally:
            sharded.close()

    def test_update_fuzz_vs_fresh_engines(self):
        """Random update/query interleavings stay unsharded-identical."""
        g = _graph(37, cats=4)
        sharded = ShardedQueryService(g.copy(), 2)
        rng = random.Random(5)
        try:
            for _ in range(15):
                action = rng.random()
                if action < 0.25:
                    v = rng.randrange(g.num_vertices)
                    cid = rng.randrange(4)
                    if sharded.graph.has_category(v, cid) \
                            and sharded.graph.category_size(cid) > 1:
                        sharded.remove_vertex_from_category(v, cid)
                    else:
                        sharded.add_vertex_to_category(v, cid)
                elif action < 0.3:
                    sharded.compact()
                else:
                    q = sharded.make_query(
                        rng.randrange(g.num_vertices),
                        rng.randrange(g.num_vertices),
                        rng.sample(range(4), rng.randint(1, 3)), k=2)
                    fresh = KOSREngine.build(sharded.graph.copy())
                    assert_same_outcome(sharded.run(q, QueryOptions()),
                                        fresh.run(q))
        finally:
            sharded.close()


class TestWorkerProtocol:
    """Drive worker_main directly (in a thread) over a real pipe.

    Messages are ``(kind, seq, *args)``; replies echo the sequence
    number (``("ok"|"err", seq, payload)``) so the parent can discard
    replies to exchanges it abandoned.
    """

    @pytest.fixture()
    def worker_conn(self):
        import itertools
        import multiprocessing
        import threading

        from repro.shard.worker import worker_main

        g = _graph(91)
        engine = KOSREngine.build(g)
        parent, child = multiprocessing.Pipe(duplex=True)
        thread = threading.Thread(
            target=worker_main,
            args=(child, g, engine.labels, [0, 2], "packed", None, None,
                  None),
            daemon=True)
        thread.start()
        kind, seq, health = parent.recv()  # startup handshake
        assert (kind, seq) == ("ok", 0)
        seqs = itertools.count(1)

        def exchange(kind, *args):
            seq = next(seqs)
            parent.send((kind, seq, *args))
            reply_kind, reply_seq, payload = parent.recv()
            assert reply_seq == seq
            return reply_kind, payload

        yield g, engine, exchange, health
        assert exchange("shutdown") == ("ok", "bye")
        thread.join(timeout=5)

    def test_query_ping_stats_and_faulting(self, worker_conn):
        g, engine, exchange, health = worker_conn
        assert health["owned_categories"] == [0, 2]
        q = make_query(g, 0, 20, [1, 3], k=2)  # neither category owned
        kind, result = exchange("query", q, QueryOptions())
        assert kind == "ok"
        assert_same_outcome(result, engine.run(q))
        _, report = exchange("ping")
        # Both unowned categories were faulted in to serve the query.
        assert set(report["materialized_categories"]) == {0, 1, 2, 3}
        kind, stats = exchange("stats")
        assert kind == "ok" and stats["finder_misses"] == 1

    def test_update_only_patches_materialized_categories(self, worker_conn):
        g, engine, exchange, _ = worker_conn
        v = next(v for v in range(g.num_vertices)
                 if not g.has_category(v, 1))
        kind, epoch = exchange("update", "add", v, 1)  # not materialized
        assert kind == "ok" and epoch == 0   # membership only, no IL touch
        _, report = exchange("ping")
        assert 1 not in report["materialized_categories"]
        kind, epoch = exchange("update", "add", v, 0)  # owned: IL patched
        assert kind == "ok" and epoch >= 1
        kind, _ = exchange("compact")
        assert kind == "ok"

    def test_errors_are_replies_not_crashes(self, worker_conn):
        g, _, exchange, _ = worker_conn
        kind, exc = exchange("nonsense")
        assert kind == "err" and isinstance(exc, ValueError)
        q = make_query(g, 0, 20, [0], k=1)
        kind, exc = exchange("query", q,
                             QueryOptions(budget=0, strict_budget=True))
        assert kind == "err"
        # The worker answered and lives on: the next request still works.
        kind, result = exchange("query", q, QueryOptions())
        assert kind == "ok" and result.stats.completed


class TestLifecycle:
    def test_ping_reports_every_shard(self, setting):
        _, sharded = setting
        reports = sharded.ping()
        assert [r["shard"] for r in reports] == [0, 1]
        assert all(r["alive"] for r in reports)
        owned = sorted(c for r in reports for c in r["owned_categories"])
        assert owned == [0, 1, 2, 3]  # a partition: disjoint and complete

    def test_cache_stats_and_hit_rates_aggregate(self, setting):
        _, sharded = setting
        q = make_query(sharded.graph, 3, 33, [0], k=1)
        sharded.run(q, QueryOptions())
        sharded.run(q, QueryOptions())
        totals = sharded.cache_stats()
        assert totals["finder_misses"] >= 1
        rates = sharded.hit_rates()
        assert set(rates) == {"finder", "dest_kernel", "ch", "disk_view"}
        assert 0.0 <= rates["finder"] <= 1.0

    def test_close_is_idempotent_and_querying_after_close_fails(self):
        sharded = ShardedQueryService(_graph(7), 2)
        q = sharded.make_query(0, 10, [0], k=1)
        sharded.run(q, QueryOptions())
        sharded.close()
        sharded.close()
        assert all(not p.is_alive() for p in sharded._procs)
        with pytest.raises(ShardError):
            sharded.run(q, QueryOptions())

    def test_timed_out_reply_is_discarded_not_served_to_next_request(self):
        """A slow reply must never answer a *later* request (regression).

        Shrink the timeout so an exchange abandons early, then verify
        the following request on the same shard gets its own answer —
        the stale reply is dropped by sequence number, not popped as the
        next response.
        """
        import time

        sharded = ShardedQueryService(_graph(41), 1)
        try:
            q_slow = sharded.make_query(0, 10, [0, 1], k=3)
            q_fast = sharded.make_query(5, 20, [1], k=1)
            sharded.timeout_s = 0.0  # every reply is now "too slow"
            with pytest.raises(ShardError, match="no response"):
                sharded.run(q_slow, QueryOptions())
            time.sleep(0.5)  # let the worker finish and send the stale reply
            sharded.timeout_s = 30.0
            got = sharded.run(q_fast, QueryOptions())
            cold = KOSREngine.build(sharded.graph.copy()).run(q_fast)
            assert_same_outcome(got, cold)
        finally:
            sharded.close()

    def test_dead_worker_surfaces_as_shard_error(self):
        sharded = ShardedQueryService(_graph(13), 2)
        try:
            sharded._procs[0].terminate()
            sharded._procs[0].join(timeout=5)
            q = sharded.make_query(0, 10, [0], k=1)  # category 0 -> shard 0
            with pytest.raises(ShardError):
                sharded.run(q, QueryOptions())
            reports = sharded.ping()
            assert reports[0]["alive"] is False
            assert reports[1]["alive"] is True
        finally:
            sharded.close()

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardedQueryService(_graph(3), 0)

    def test_failed_startup_tears_spawned_workers_down(self, monkeypatch):
        """A handshake failure must not leak already-started workers."""
        spawned = {}
        original_recv = ShardedQueryService._recv

        def failing_recv(self, shard, seq, timeout_s=None):
            if seq == 0 and shard == 1:  # second worker "fails" to start
                spawned["procs"] = list(self._procs)
                raise ShardError(shard, "simulated startup failure")
            return original_recv(self, shard, seq, timeout_s=timeout_s)

        monkeypatch.setattr(ShardedQueryService, "_recv", failing_recv)
        with pytest.raises(ShardError, match="simulated"):
            ShardedQueryService(_graph(23), 2)
        for proc in spawned["procs"]:
            proc.join(timeout=10)
            assert not proc.is_alive()

    def test_unrecoverable_update_broadcast_poisons_the_fleet(
            self, monkeypatch):
        """Divergent fleets fail fast instead of serving inconsistently.

        A broadcast failure is now recovered by retry + respawn; only
        when even the respawn fails does the fleet poison itself.
        """
        sharded = ShardedQueryService(_graph(31), 2, update_retries=0)
        try:
            q = sharded.make_query(0, 10, [0], k=1)
            sharded.run(q, QueryOptions())
            original = ShardedQueryService._exchange_locked

            def failing_exchange(self, shard, msg, on_route=None):
                if msg[0] == "update" and shard == 1:
                    raise ShardError(shard, "worker died mid-broadcast")
                return original(self, shard, msg, on_route=on_route)

            def failing_respawn(self, shard):
                raise ShardError(shard, "respawn denied by test")

            monkeypatch.setattr(ShardedQueryService, "_exchange_locked",
                                failing_exchange)
            monkeypatch.setattr(ShardedQueryService,
                                "_respawn_worker_locked", failing_respawn)
            with pytest.raises(ShardError, match="respawn denied"):
                sharded.add_vertex_to_category(0, 1)
            monkeypatch.undo()
            with pytest.raises(ShardError, match="diverged"):
                sharded.run(q, QueryOptions())
        finally:
            sharded.close()

    def test_workers_follow_a_killed_parent_down(self):
        """SIGKILL the parent: the watchdog must reap the workers.

        Under fork, workers inherit parent-side pipe fds, so they never
        see EOF when the parent dies uncleanly — the recv loop's
        parent-pid watchdog is what prevents orphaned worker processes
        (regression: `kill <serve pid>` used to leave them behind).
        """
        import os
        import signal
        import subprocess
        import sys
        import time

        code = (
            "import random, time\n"
            "from repro import ShardedQueryService\n"
            "from repro.graph.builders import random_graph\n"
            "from repro.graph.categories import assign_uniform_categories\n"
            "g = random_graph(30, avg_out_degree=2.5,"
            " rng=random.Random(1))\n"
            "assign_uniform_categories(g, 2, 5, random.Random(2))\n"
            "s = ShardedQueryService(g, 2)\n"
            "print('\\n'.join(str(r['pid']) for r in s.ping()),"
            " flush=True)\n"
            "time.sleep(60)\n"
        )
        import repro

        src = os.path.dirname(os.path.dirname(repro.__file__))
        env = {**os.environ,
               "PYTHONPATH": src + os.pathsep
               + os.environ.get("PYTHONPATH", "")}
        proc = subprocess.Popen([sys.executable, "-c", code],
                                stdout=subprocess.PIPE, text=True, env=env)
        try:
            pids = [int(proc.stdout.readline()) for _ in range(2)]
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
            deadline = time.time() + 10
            while time.time() < deadline and any(
                    os.path.exists(f"/proc/{pid}") for pid in pids):
                time.sleep(0.2)
            leftover = [pid for pid in pids
                        if os.path.exists(f"/proc/{pid}")]
            for pid in leftover:  # never leak even when failing
                os.kill(pid, signal.SIGKILL)
            assert not leftover
        finally:
            if proc.poll() is None:
                proc.kill()


class TestAsyncOverShards:
    def test_coalescing_and_parity_through_the_front_door(self, setting):
        from repro import AsyncQueryService

        engine, sharded = setting
        q = make_query(engine.graph, 4, 32, [0, 1], k=3)
        request = QueryRequest(q, QueryOptions())

        async def scenario():
            async with AsyncQueryService(sharded, max_inflight=2) as front:
                results = await asyncio.gather(
                    *(front.submit(request) for _ in range(6)))
                return results, front.stats

        results, stats = asyncio.run(scenario())
        assert stats.executed == 1 and stats.coalesced == 5
        assert all(r is results[0] for r in results)
        assert_same_outcome(results[0], engine.run(q))

    def test_gather_mixed_groups_parity(self, setting):
        from repro import AsyncQueryService

        engine, sharded = setting
        rng = random.Random(3)
        queries = [make_query(engine.graph, rng.randrange(40),
                              rng.randrange(40),
                              rng.sample(range(4), rng.randint(1, 2)), k=2)
                   for _ in range(8)]
        requests = [QueryRequest(q, QueryOptions()) for q in queries]

        async def scenario():
            async with AsyncQueryService(sharded, max_inflight=3) as front:
                return await front.gather(requests)

        results = asyncio.run(scenario())
        for q, got in zip(queries, results):
            assert_same_outcome(got, engine.run(q))


class TestShardedTCP:
    def test_serve_and_stats_request_over_shards(self, setting):
        from repro.server.tcp import serve

        engine, sharded = setting
        s, t = 2, 31

        async def scenario():
            server = await serve(None, "127.0.0.1", 0, service=sharded)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(json.dumps(
                {"id": "q", "source": s, "target": t,
                 "categories": [0, 1], "k": 2}).encode() + b"\n")
            writer.write(json.dumps({"id": "ops", "stats": True}).encode()
                         + b"\n")
            await writer.drain()
            answer = json.loads(await reader.readline())
            stats = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await server.query_service.close()
            return answer, stats

        answer, stats = asyncio.run(scenario())
        cold = engine.run(make_query(engine.graph, s, t, [0, 1], k=2))
        assert answer["id"] == "q"
        assert answer["costs"] == pytest.approx(cold.costs)
        assert answer["nn_queries"] == cold.stats.nn_queries
        assert stats["id"] == "ops"
        assert stats["stats"]["serving"]["executed"] >= 1
        assert "finder_misses" in stats["stats"]["cache"]
        assert set(stats["stats"]["hit_rates"]) == \
            {"finder", "dest_kernel", "ch", "disk_view"}
        # Index footprint arrives per worker over the pipes.
        memory = stats["stats"]["index_memory"]
        assert memory["num_shards"] == sharded.num_shards
        assert len(memory["shards"]) == sharded.num_shards
        for shard in memory["shards"]:
            assert shard["total_resident"] > 0
            assert "rss_bytes" in shard and "uss_bytes" in shard
        # Epoch/version state arrives per shard too.
        epochs = stats["stats"]["epochs"]
        assert epochs["router_epoch"] == sharded._epoch
        assert len(epochs["shards"]) == sharded.num_shards
        for report in epochs["shards"]:
            assert report["alive"] is True
            assert report["epoch"] == report["epoch_base"] + \
                sum(report["category_versions"].values())


class TestShardedCLI:
    @pytest.fixture()
    def workload_setup(self, tmp_path):
        from repro.graph.io import save_json

        g = _graph(53)
        graph_path = tmp_path / "g.json"
        save_json(g, graph_path)
        records = [
            {"source": 0, "target": 30, "categories": [0, 1], "k": 2},
            {"source": 2, "target": 30, "categories": [1], "k": 2},
            {"source": 5, "target": 11, "categories": [2, 3], "k": 1},
        ]
        wl_path = tmp_path / "wl.json"
        wl_path.write_text(json.dumps(records))
        return g, str(graph_path), str(wl_path), records

    def _reference_rows(self, g, records):
        engine = KOSREngine.build(g)
        return [engine.run(make_query(g, r["source"], r["target"],
                                      r["categories"], k=r["k"]))
                for r in records]

    def test_batch_shards_matches_unsharded(self, workload_setup, capsys):
        from repro.cli import main

        g, graph_path, wl_path, records = workload_setup
        assert main(["batch", "--graph", graph_path, "--workload", wl_path,
                     "--shards", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        refs = self._reference_rows(g, records)
        assert len(payload["queries"]) == len(records)
        for row, ref in zip(payload["queries"], refs):
            assert row["costs"] == pytest.approx(ref.costs)
            assert row["nn_queries"] == ref.stats.nn_queries
            assert row["examined_routes"] == ref.stats.examined_routes
        assert "cache_stats" in payload

    def test_async_batch_shards_matches_unsharded(self, workload_setup,
                                                  capsys):
        from repro.cli import main

        g, graph_path, wl_path, records = workload_setup
        assert main(["async-batch", "--graph", graph_path,
                     "--workload", wl_path, "--shards", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        refs = self._reference_rows(g, records)
        for row, ref in zip(payload["queries"], refs):
            assert row["costs"] == pytest.approx(ref.costs)
            assert row["nn_queries"] == ref.stats.nn_queries
        assert payload["serving_stats"]["executed"] == len(records)

    def test_shards_one_runs_a_real_single_worker_fleet(self, workload_setup,
                                                        capsys):
        """--shards 1 must engage the worker process, not fall back."""
        from unittest.mock import patch

        from repro.cli import main
        from repro.shard import ShardedQueryService

        g, graph_path, wl_path, records = workload_setup
        with patch.object(ShardedQueryService, "run_batch",
                          autospec=True,
                          side_effect=ShardedQueryService.run_batch) as spy:
            assert main(["batch", "--graph", graph_path,
                         "--workload", wl_path, "--shards", "1",
                         "--json"]) == 0
            assert spy.called  # the fleet served it, not the engine
        payload = json.loads(capsys.readouterr().out)
        refs = self._reference_rows(g, records)
        for row, ref in zip(payload["queries"], refs):
            assert row["costs"] == pytest.approx(ref.costs)
            assert row["nn_queries"] == ref.stats.nn_queries

    def test_nonpositive_shards_rejected(self, workload_setup):
        from repro.cli import main

        _, graph_path, wl_path, _ = workload_setup
        with pytest.raises(SystemExit, match="--shards must be >= 1"):
            main(["batch", "--graph", graph_path, "--workload", wl_path,
                  "--shards", "0"])

    def test_sk_db_with_shards_rejected_before_spawn(self, workload_setup,
                                                     tmp_path):
        from repro.cli import main

        _, graph_path, _, _ = workload_setup
        wl = tmp_path / "skdb.json"
        wl.write_text(json.dumps([{"source": 0, "target": 1,
                                   "categories": [0], "method": "SK-DB"}]))
        with pytest.raises(SystemExit, match="SK-DB"):
            main(["batch", "--graph", graph_path, "--workload", str(wl),
                  "--shards", "2"])
